package authd

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/codepool"
)

// Snapshots bound replay time and let the WAL be truncated: every
// SnapshotEvery mutations the server writes a checksummed point-in-time
// image of its whole durable state — registry, join count, slot cursor,
// revocation table — tagged with the WAL sequence it covers, then empties
// the log. The write is atomic (tmp + fsync + rename + directory fsync),
// so a crash leaves either the old snapshot or the new one, never a
// half-written hybrid; a crash between the rename and the truncate leaves
// a WAL whose prefix the snapshot already covers, which replay skips by
// sequence number.
//
// The pool itself is NOT serialized: pool state is a pure function of
// (Params, Seed, ordered join count) — codepool.New is deterministic in
// its rand.Source and Join is the only mutation — so the snapshot stores
// the join count and recovery replays that many joins to rebuild the pool
// and the join RNG bit for bit. That keeps snapshots O(assignments)
// instead of O(pool) and reuses the live code path, which the recovery
// divergence check (recover.go) then cross-validates against every
// logged join.
//
// Snapshot file layout (big-endian):
//
//	magic "JRSNDSN1" | u32 payload length | u32 CRC-32C(payload) | payload
//
// payload:
//
//	u32 n, m, l, γ | i64 seed          — identity; must match the server's
//	u64 seq                            — WAL sequence this snapshot covers
//	u64 fp                             — replication fingerprint chain at seq
//	u64 cursor                         — raw deployment-slot cursor
//	i64 takenAt (unix ns)
//	u32 joinCount                      — §V-A joins to replay
//	u32 registry entry count, then per entry:
//	    u32 node | u8 via (0=provision, 1=join) | i64 at | u16 tagLen | tag
//	u32 revocation counter count, then per entry: u32 code | u32 count
//	u32 revoked code count, then per entry: u32 code

const (
	snapMagic = "JRSNDSN1"
	// snapMaxPayload caps a declared payload before trusting it — the
	// registry of a fully provisioned+joined deployment is a few MiB at
	// the defaults; 256 MiB is an order-of-magnitude ceiling, not a target.
	snapMaxPayload = 1 << 28

	snapViaProvision = 0
	snapViaJoin      = 1
)

// Durable file names within the data directory.
const (
	walFileName  = "wal.log"
	snapFileName = "snapshot.jrsnd"
	snapTmpName  = "snapshot.tmp"
	metaFileName = "authority.meta"
)

// snapshotState is the decoded image.
type snapshotState struct {
	N, M, L, Gamma int
	Seed           int64
	Seq            uint64
	FP             uint64
	Cursor         uint64
	TakenAt        int64
	JoinCount      int
	Reg            []snapRegEntry
	Counters       []snapCounter
	Revoked        []int32
}

type snapRegEntry struct {
	Node int
	Via  uint8
	At   int64
	Tag  string
}

type snapCounter struct {
	Code  int32
	Count int32
}

// encodeSnapshot renders the full file, checksum included.
func encodeSnapshot(st snapshotState) ([]byte, error) {
	var p []byte
	p = binary.BigEndian.AppendUint32(p, uint32(st.N))
	p = binary.BigEndian.AppendUint32(p, uint32(st.M))
	p = binary.BigEndian.AppendUint32(p, uint32(st.L))
	p = binary.BigEndian.AppendUint32(p, uint32(st.Gamma))
	p = binary.BigEndian.AppendUint64(p, uint64(st.Seed))
	p = binary.BigEndian.AppendUint64(p, st.Seq)
	p = binary.BigEndian.AppendUint64(p, st.FP)
	p = binary.BigEndian.AppendUint64(p, st.Cursor)
	p = binary.BigEndian.AppendUint64(p, uint64(st.TakenAt))
	p = binary.BigEndian.AppendUint32(p, uint32(st.JoinCount))
	p = binary.BigEndian.AppendUint32(p, uint32(len(st.Reg)))
	for _, e := range st.Reg {
		if len(e.Tag) > walMaxTag {
			return nil, fmt.Errorf("authd: snapshot: node %d tag %d bytes > %d", e.Node, len(e.Tag), walMaxTag)
		}
		p = binary.BigEndian.AppendUint32(p, uint32(e.Node))
		p = append(p, e.Via)
		p = binary.BigEndian.AppendUint64(p, uint64(e.At))
		p = binary.BigEndian.AppendUint16(p, uint16(len(e.Tag)))
		p = append(p, e.Tag...)
	}
	p = binary.BigEndian.AppendUint32(p, uint32(len(st.Counters)))
	for _, c := range st.Counters {
		p = binary.BigEndian.AppendUint32(p, uint32(c.Code))
		p = binary.BigEndian.AppendUint32(p, uint32(c.Count))
	}
	p = binary.BigEndian.AppendUint32(p, uint32(len(st.Revoked)))
	for _, c := range st.Revoked {
		p = binary.BigEndian.AppendUint32(p, uint32(c))
	}

	out := make([]byte, 0, len(snapMagic)+8+len(p))
	out = append(out, snapMagic...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(p)))
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(p, crcTable))
	out = append(out, p...)
	return out, nil
}

// snapCursor walks the payload with bounds checks on every read.
type snapCursor struct {
	data []byte
	off  int
}

func (c *snapCursor) need(n int) ([]byte, error) {
	if c.off+n > len(c.data) {
		return nil, fmt.Errorf("authd: snapshot payload truncated at offset %d (need %d of %d)", c.off, n, len(c.data))
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *snapCursor) u32() (uint32, error) {
	b, err := c.need(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (c *snapCursor) u64() (uint64, error) {
	b, err := c.need(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// decodeSnapshot verifies the checksum and parses the payload. Counts are
// cross-checked against the remaining byte budget before any loop, so a
// hostile length can never drive allocation.
func decodeSnapshot(data []byte) (snapshotState, error) {
	var st snapshotState
	if len(data) < len(snapMagic)+8 {
		return st, fmt.Errorf("authd: snapshot file %d bytes is too short", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return st, fmt.Errorf("authd: snapshot magic mismatch")
	}
	plen := int(binary.BigEndian.Uint32(data[len(snapMagic) : len(snapMagic)+4]))
	if plen > snapMaxPayload {
		return st, fmt.Errorf("authd: snapshot payload %d bytes > %d", plen, snapMaxPayload)
	}
	wantCRC := binary.BigEndian.Uint32(data[len(snapMagic)+4 : len(snapMagic)+8])
	payload := data[len(snapMagic)+8:]
	if len(payload) != plen {
		return st, fmt.Errorf("authd: snapshot payload %d bytes, header declares %d", len(payload), plen)
	}
	if crc := crc32.Checksum(payload, crcTable); crc != wantCRC {
		return st, fmt.Errorf("authd: snapshot checksum %08x != %08x", crc, wantCRC)
	}

	c := &snapCursor{data: payload}
	var err error
	var v uint32
	if v, err = c.u32(); err != nil {
		return st, err
	}
	st.N = int(v)
	if v, err = c.u32(); err != nil {
		return st, err
	}
	st.M = int(v)
	if v, err = c.u32(); err != nil {
		return st, err
	}
	st.L = int(v)
	if v, err = c.u32(); err != nil {
		return st, err
	}
	st.Gamma = int(v)
	var w uint64
	if w, err = c.u64(); err != nil {
		return st, err
	}
	st.Seed = int64(w)
	if st.Seq, err = c.u64(); err != nil {
		return st, err
	}
	if st.FP, err = c.u64(); err != nil {
		return st, err
	}
	if st.Cursor, err = c.u64(); err != nil {
		return st, err
	}
	if w, err = c.u64(); err != nil {
		return st, err
	}
	st.TakenAt = int64(w)
	if v, err = c.u32(); err != nil {
		return st, err
	}
	st.JoinCount = int(v)

	regCount, err := c.u32()
	if err != nil {
		return st, err
	}
	// Each registry entry is at least 15 bytes; a count the remaining
	// bytes cannot hold is corruption, caught before the loop allocates.
	if int(regCount) > (len(payload)-c.off)/15 {
		return st, fmt.Errorf("authd: snapshot declares %d registry entries in %d bytes", regCount, len(payload)-c.off)
	}
	for i := 0; i < int(regCount); i++ {
		var e snapRegEntry
		if v, err = c.u32(); err != nil {
			return st, err
		}
		e.Node = int(v)
		via, err := c.need(1)
		if err != nil {
			return st, err
		}
		e.Via = via[0]
		if e.Via != snapViaProvision && e.Via != snapViaJoin {
			return st, fmt.Errorf("authd: snapshot node %d via byte %d", e.Node, e.Via)
		}
		if w, err = c.u64(); err != nil {
			return st, err
		}
		e.At = int64(w)
		tl, err := c.need(2)
		if err != nil {
			return st, err
		}
		tagLen := int(binary.BigEndian.Uint16(tl))
		if tagLen > walMaxTag {
			return st, fmt.Errorf("authd: snapshot node %d tag %d bytes > %d", e.Node, tagLen, walMaxTag)
		}
		tag, err := c.need(tagLen)
		if err != nil {
			return st, err
		}
		e.Tag = string(tag)
		st.Reg = append(st.Reg, e)
	}

	counterCount, err := c.u32()
	if err != nil {
		return st, err
	}
	if int(counterCount) > (len(payload)-c.off)/8 {
		return st, fmt.Errorf("authd: snapshot declares %d counters in %d bytes", counterCount, len(payload)-c.off)
	}
	for i := 0; i < int(counterCount); i++ {
		var code, cnt uint32
		if code, err = c.u32(); err != nil {
			return st, err
		}
		if cnt, err = c.u32(); err != nil {
			return st, err
		}
		if code > 1<<30 || cnt > 1<<30 {
			return st, fmt.Errorf("authd: snapshot counter code=%d count=%d out of range", code, cnt)
		}
		st.Counters = append(st.Counters, snapCounter{Code: int32(code), Count: int32(cnt)})
	}

	revokedCount, err := c.u32()
	if err != nil {
		return st, err
	}
	if int(revokedCount) > (len(payload)-c.off)/4 {
		return st, fmt.Errorf("authd: snapshot declares %d revoked codes in %d bytes", revokedCount, len(payload)-c.off)
	}
	for i := 0; i < int(revokedCount); i++ {
		var code uint32
		if code, err = c.u32(); err != nil {
			return st, err
		}
		if code > 1<<30 {
			return st, fmt.Errorf("authd: snapshot revoked code %d out of range", code)
		}
		st.Revoked = append(st.Revoked, int32(code))
	}
	if c.off != len(payload) {
		return st, fmt.Errorf("authd: snapshot has %d trailing payload bytes", len(payload)-c.off)
	}
	return st, nil
}

// Snapshot durably captures the server's current state and truncates the
// WAL. Safe to call any time on a durable server; a no-op otherwise.
// Concurrent callers serialize; mutations are excluded for the duration
// (poolMu is the global consistency lock — every mutator holds at least
// its read side across apply+append, so the write lock is a consistent
// cut across all registry shards and the revocation table).
func (s *Server) Snapshot() error {
	if s.wal == nil {
		return nil
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.snapshotLocked()
}

// snapshotLocked does the work; the caller holds snapMu. poolMu is held
// through the truncate: truncating drops *every* record in the file, so
// no append may land between the state capture and the truncate.
func (s *Server) snapshotLocked() (err error) {
	defer func() {
		if err != nil {
			s.m.snapshotErrors.Inc()
		}
	}()
	s.poolMu.Lock()
	defer s.poolMu.Unlock()

	now := s.cfg.now()
	st := snapshotState{
		N: s.cfg.Params.N, M: s.cfg.Params.M, L: s.cfg.Params.L, Gamma: s.cfg.Params.Gamma,
		Seed: s.cfg.Seed,
		Seq:  s.wal.lastSeq(),
		// poolMu's write lock excludes appends, so the chain value is the
		// fingerprint at exactly Seq.
		FP:        s.repl.chainFP(),
		Cursor:    uint64(s.nextSlot.Load()),
		TakenAt:   now.UnixNano(),
		JoinCount: s.pool.N() - s.cfg.Params.N,
	}
	for _, e := range s.reg.dump() {
		via := uint8(snapViaProvision)
		if e.Rec.Via == "join" {
			via = snapViaJoin
		}
		st.Reg = append(st.Reg, snapRegEntry{Node: e.Node, Via: via, At: e.Rec.At.UnixNano(), Tag: e.Rec.Tag})
	}
	rev := s.rev.Dump()
	codes := make([]codepool.CodeID, 0, len(rev.Counters))
	for c := range rev.Counters {
		codes = append(codes, c)
	}
	sortCodeIDs(codes)
	for _, c := range codes {
		st.Counters = append(st.Counters, snapCounter{Code: int32(c), Count: int32(rev.Counters[c])})
	}
	for _, c := range rev.Revoked {
		st.Revoked = append(st.Revoked, int32(c))
	}

	data, err := encodeSnapshot(st)
	if err != nil {
		return err
	}
	if err := s.writeSnapshotFile(data); err != nil {
		return err
	}
	s.fireCrash(CrashMidTruncate)
	if err := s.wal.truncate(); err != nil {
		return err
	}
	// Records the snapshot now durably covers leave the replication
	// buffer; a follower further back than Seq must bootstrap from the
	// snapshot file instead of the stream.
	s.repl.compact(st.Seq)
	s.snapSeq.Store(st.Seq)
	s.lastSnapAt.Store(st.TakenAt)
	s.mutations.Store(0)
	s.m.snapshots.Inc()
	return nil
}

// writeSnapshotFile lands the image atomically: tmp file, fsync, rename
// over the live name, directory fsync. The tmp write is split in two so
// CrashMidSnapshot leaves a genuinely half-written file behind.
func (s *Server) writeSnapshotFile(data []byte) error {
	tmp := filepath.Join(s.dataDir, snapTmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("authd: snapshot tmp: %w", err)
	}
	defer f.Close()
	half := len(data) / 2
	if _, err := f.Write(data[:half]); err != nil {
		return fmt.Errorf("authd: snapshot write: %w", err)
	}
	s.fireCrash(CrashMidSnapshot)
	if _, err := f.Write(data[half:]); err != nil {
		return fmt.Errorf("authd: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("authd: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("authd: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dataDir, snapFileName)); err != nil {
		return fmt.Errorf("authd: snapshot rename: %w", err)
	}
	return syncDir(s.dataDir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("authd: open data dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("authd: sync data dir: %w", err)
	}
	return nil
}

// fireCrash invokes the injection hook at a snapshot-path point.
func (s *Server) fireCrash(p CrashPoint) {
	if s.crashHook != nil {
		s.crashHook(p)
	}
}

// noteMutation ticks the auto-snapshot counter after an acknowledged
// mutation and, past the cadence, snapshots inline on the request that
// crossed it (TryLock: concurrent crossers skip instead of queueing).
func (s *Server) noteMutation() {
	if s.wal == nil || s.snapEvery <= 0 {
		return
	}
	if s.mutations.Add(1) < int64(s.snapEvery) {
		return
	}
	if !s.snapMu.TryLock() {
		return
	}
	defer s.snapMu.Unlock()
	_ = s.snapshotLocked() // failure is counted in snapshot_errors; the WAL keeps the state safe
}

func sortCodeIDs(codes []codepool.CodeID) {
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
}
