package authd

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/codepool"
)

// Startup recovery: load the latest durable snapshot (if any), replay the
// WAL suffix it does not cover, and leave the log open for appending.
// Replay is deterministic and self-checking — it drives the *same* code
// paths that served the live traffic (pool.Join with the same RNG,
// registry.insert with its double-assignment check) and every logged join
// carries the node index the live system acknowledged, so a replay that
// diverges by even one slot fails loudly instead of resurrecting a
// different history.
//
// Torn-tail rule: a record the crash tore mid-write is truncated away and
// recovery proceeds — those bytes were never acknowledged. A damaged
// record with valid records *after* it is different: some acknowledged
// mutation would be silently skipped, so recovery refuses (ErrWALCorrupt)
// and the operator keeps the evidence.

// Durability configures the durable layer. The zero value (empty Dir)
// leaves the server fully in-memory, exactly as before this layer
// existed.
type Durability struct {
	// Dir is the data directory (WAL, snapshot, identity file). Created
	// if missing. Empty disables durability.
	Dir string
	// SnapshotEvery snapshots + truncates after this many acknowledged
	// mutations. 0 selects the default (4096); negative disables
	// automatic snapshots (explicit Snapshot() still works).
	SnapshotEvery int
	// FsyncEvery batches WAL fsyncs: 0 or 1 syncs every append (the
	// durable default — an acknowledgment implies the record is on disk);
	// N>1 groups appends per fsync, trading the last <N acknowledged
	// mutations on power loss for throughput.
	FsyncEvery int
	// CrashHook is the crash-fault injection hook (crash harness only);
	// nil in production.
	CrashHook CrashHook
}

const defaultSnapshotEvery = 4096

// metaMagic heads the identity file written on first boot of a data
// directory; reopening with different parameters or a different seed
// would silently rebuild a different pool, so it is refused instead.
const metaMagic = "JRSNDMETA1"

// openDurable recovers state from d.Dir into the freshly constructed
// server and opens the WAL for appending. Called from New, before the
// server is reachable.
func (s *Server) openDurable(d Durability) error {
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return fmt.Errorf("authd: data dir: %w", err)
	}
	s.dataDir = d.Dir
	s.crashHook = d.CrashHook
	s.snapEvery = d.SnapshotEvery
	if s.snapEvery == 0 {
		s.snapEvery = defaultSnapshotEvery
	}
	if err := s.checkMeta(); err != nil {
		return err
	}
	// The replication tracker exists on every durable server — follower
	// or primary — so the fingerprint chain and the streamable record
	// buffer are rebuilt by the same recovery that rebuilds the state.
	s.repl = newReplTracker()
	// A leftover snapshot.tmp is a snapshot the crash interrupted before
	// the atomic rename; it was never the live image.
	_ = os.Remove(filepath.Join(d.Dir, snapTmpName))

	var snapSeq uint64
	snapData, err := os.ReadFile(filepath.Join(d.Dir, snapFileName))
	switch {
	case os.IsNotExist(err):
		// cold start or WAL-only directory
	case err != nil:
		return fmt.Errorf("authd: read snapshot: %w", err)
	default:
		st, err := decodeSnapshot(snapData)
		if err != nil {
			return err
		}
		if err := s.restoreSnapshot(st); err != nil {
			return err
		}
		snapSeq = st.Seq
	}
	s.snapSeq.Store(snapSeq)

	walPath := filepath.Join(d.Dir, walFileName)
	lastSeq, err := s.replayWAL(walPath, snapSeq)
	if err != nil {
		return err
	}
	if s.lastSnapAt.Load() == 0 {
		s.lastSnapAt.Store(s.cfg.now().UnixNano())
	}
	s.wal, err = openWAL(walPath, lastSeq, d.FsyncEvery, s.repl, d.CrashHook, s.m.walAppends, s.m.walFsyncs)
	return err
}

// checkMeta verifies (or on first boot records) the directory's identity:
// pool parameters and seed, checksummed. Everything replay reconstructs
// is derived from these.
func (s *Server) checkMeta() error {
	path := filepath.Join(s.dataDir, metaFileName)
	want := fmt.Sprintf("%s n=%d m=%d l=%d gamma=%d seed=%d\n",
		metaMagic, s.cfg.Params.N, s.cfg.Params.M, s.cfg.Params.L, s.cfg.Params.Gamma, s.cfg.Seed)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
			return fmt.Errorf("authd: write identity file: %w", err)
		}
		return syncDir(s.dataDir)
	}
	if err != nil {
		return fmt.Errorf("authd: read identity file: %w", err)
	}
	if string(data) != want {
		return fmt.Errorf("authd: data dir %s was written by a different authority: %q, this server is %q",
			s.dataDir, string(data), want)
	}
	return nil
}

// restoreSnapshot rebuilds live state from a decoded image.
func (s *Server) restoreSnapshot(st snapshotState) error {
	p := s.cfg.Params
	if st.N != p.N || st.M != p.M || st.L != p.L || st.Gamma != p.Gamma || st.Seed != s.cfg.Seed {
		return fmt.Errorf("authd: snapshot identity (n=%d m=%d l=%d γ=%d seed=%d) does not match the server (n=%d m=%d l=%d γ=%d seed=%d)",
			st.N, st.M, st.L, st.Gamma, st.Seed, p.N, p.M, p.L, p.Gamma, s.cfg.Seed)
	}
	if st.JoinCount < 0 {
		return fmt.Errorf("authd: snapshot join count %d", st.JoinCount)
	}
	// Rebuild the pool by replaying the joins; the pool and the join RNG
	// end up bit-identical to the moment the snapshot was taken.
	for i := 0; i < st.JoinCount; i++ {
		if _, err := s.pool.Join(s.joinRng); err != nil {
			return fmt.Errorf("authd: snapshot join replay %d/%d: %w", i+1, st.JoinCount, err)
		}
	}
	for _, e := range st.Reg {
		if e.Node < 0 || e.Node >= s.pool.N() {
			return fmt.Errorf("authd: snapshot node %d outside pool of %d", e.Node, s.pool.N())
		}
		via := "provision"
		if e.Via == snapViaJoin {
			via = "join"
		}
		rec := record{Codes: s.pool.Codes(e.Node), Tag: e.Tag, Via: via, At: time.Unix(0, e.At)}
		if err := s.reg.insert(e.Node, rec); err != nil {
			return fmt.Errorf("authd: snapshot registry: %w", err)
		}
	}
	rv := codepool.RevocationState{Counters: map[codepool.CodeID]int{}}
	for _, c := range st.Counters {
		rv.Counters[codepool.CodeID(c.Code)] = int(c.Count)
	}
	for _, c := range st.Revoked {
		rv.Revoked = append(rv.Revoked, codepool.CodeID(c))
	}
	if err := s.rev.Restore(rv); err != nil {
		return fmt.Errorf("authd: snapshot revocations: %w", err)
	}
	s.nextSlot.Store(int64(st.Cursor))
	s.lastSnapAt.Store(st.TakenAt)
	// The snapshot carries the fingerprint chain's value at its sequence;
	// the replayed WAL suffix extends the chain from there.
	s.repl.reset(st.Seq, st.FP)
	return nil
}

// replayWAL scans the log, truncates a torn tail, applies every record
// the snapshot does not already cover, and returns the last sequence
// number on disk (or covered by the snapshot, whichever is later).
func (s *Server) replayWAL(path string, snapSeq uint64) (uint64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return snapSeq, nil
	}
	if err != nil {
		return 0, fmt.Errorf("authd: read WAL: %w", err)
	}
	recs, goodLen, err := scanWAL(data)
	if err != nil {
		return 0, err
	}
	if goodLen < len(data) {
		// Torn tail: the partial record was never acknowledged. Cut it off
		// durably before appending anything after it.
		if err := os.Truncate(path, int64(goodLen)); err != nil {
			return 0, fmt.Errorf("authd: truncate torn WAL tail: %w", err)
		}
		s.m.walTornTails.Inc()
	}
	if len(recs) == 0 {
		return snapSeq, nil
	}
	// The first record must belong to this history: sequence 1 on a
	// truncated (or fresh) log, or anything at/below snapSeq+1 when a
	// crash left pre-snapshot records behind. A first record *beyond*
	// snapSeq+1 means a prefix of acknowledged records is missing.
	if first := recs[0].Seq; first != 1 && first > snapSeq+1 {
		return 0, fmt.Errorf("%w: log starts at sequence %d, snapshot covers %d", ErrWALCorrupt, first, snapSeq)
	}
	last := recs[len(recs)-1].Seq
	if last < snapSeq {
		// Entire log predates the snapshot (crash between rename and
		// truncate, then more crashes before any new append). Nothing to
		// apply.
		return snapSeq, nil
	}
	for _, rec := range recs {
		if rec.Seq <= snapSeq {
			continue
		}
		obs, err := s.applyRecord(rec)
		if err != nil {
			return 0, err
		}
		// Re-encode the record canonically and extend the fingerprint
		// chain exactly as the live append did, so a recovered server's
		// chain equals the one it (or its primary) computed before dying.
		frame, err := appendWALRecord(nil, rec)
		if err != nil {
			return 0, err
		}
		s.repl.extend(rec.Seq, rec.Kind, frame, obs)
		s.m.walReplayed.Inc()
	}
	return last, nil
}

// applyRecord applies one logged mutation through the live code paths,
// returning the same observation digest the live mutation computed —
// replay and replication chain the same fingerprints as the original
// execution, which is what makes cross-replica divergence detectable.
func (s *Server) applyRecord(rec walRecord) (uint64, error) {
	switch rec.Kind {
	case walProvision:
		end := rec.Start + rec.Count
		if rec.Start < 0 || end > s.cfg.Params.N {
			return 0, fmt.Errorf("%w: seq %d provisions [%d, %d) outside n=%d", ErrWALCorrupt, rec.Seq, rec.Start, end, s.cfg.Params.N)
		}
		at := time.Unix(0, rec.At)
		for node := rec.Start; node < end; node++ {
			r := record{Codes: s.pool.Codes(node), Tag: rec.Tag, Via: "provision", At: at}
			if err := s.reg.insert(node, r); err != nil {
				return 0, fmt.Errorf("%w: seq %d: %v", ErrWALCorrupt, rec.Seq, err)
			}
		}
		if cur := int64(end); cur > s.nextSlot.Load() {
			s.nextSlot.Store(cur)
		}
		return obsProvision(rec.Start, rec.Count, s.pool.Codes), nil
	case walJoin:
		before := s.pool.Expansions()
		node, err := s.pool.Join(s.joinRng)
		if err != nil {
			return 0, fmt.Errorf("%w: seq %d join replay: %v", ErrWALCorrupt, rec.Seq, err)
		}
		if node != rec.Node {
			return 0, fmt.Errorf("%w: seq %d join replay diverged: produced node %d, log acknowledged %d", ErrWALCorrupt, rec.Seq, node, rec.Node)
		}
		if expanded := s.pool.Expansions() > before; expanded != rec.Expanded {
			return 0, fmt.Errorf("%w: seq %d join replay diverged: expansion %v, log says %v", ErrWALCorrupt, rec.Seq, expanded, rec.Expanded)
		}
		r := record{Codes: s.pool.Codes(node), Tag: rec.Tag, Via: "join", At: time.Unix(0, rec.At)}
		if err := s.reg.insert(node, r); err != nil {
			return 0, fmt.Errorf("%w: seq %d: %v", ErrWALCorrupt, rec.Seq, err)
		}
		return obsJoin(node, rec.Expanded, s.pool.Expansions(), s.pool.Codes(node)), nil
	case walRevoke:
		if int(rec.Code) < 0 || int(rec.Code) >= s.pool.S() {
			return 0, fmt.Errorf("%w: seq %d revokes code %d outside pool of %d", ErrWALCorrupt, rec.Seq, rec.Code, s.pool.S())
		}
		s.rev.ReportInvalid(codepool.CodeID(rec.Code))
		return obsRevoke(rec.Code), nil
	default:
		return 0, fmt.Errorf("%w: seq %d kind %d", ErrWALCorrupt, rec.Seq, rec.Kind)
	}
}
