package authd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// ErrUnavailable: every configured endpoint was tried and none produced a
// definitive answer (transport failures, 5xx, or not-primary redirects all
// the way down). Distinct from a structured refusal — the caller may be
// mid-failover and can retry later.
var ErrUnavailable = errors.New("authd: no replica available")

// Client is the retrying library client for the authority service. Its
// retry loop reuses the engine's full-jitter backoff shape (core/retry.go):
// the delay before retry k is drawn uniformly from [0, BackoffBase·2^(k-1)),
// capped at BackoffCap. Retries fire on transport errors, 429, and 5xx;
// structured failures (400/404/409/413) surface immediately as the typed
// errors of this package.
//
// Failover: with Endpoints set, the client walks a deterministic seeded
// permutation of the replica set, rotating to the next endpoint on a
// transport error or 5xx. A 421 (ErrNotPrimary) from a follower carries
// the X-JRSND-Primary hint, which the client pins for its next attempt —
// so a mutation sent to a follower lands on the primary one retry later.
type Client struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:7946".
	// Ignored when Endpoints is set.
	Base string
	// Endpoints lists every replica's base URL. When non-empty the client
	// fails over across them; reads are served by whichever endpoint
	// answers, mutations follow 421 redirects to the primary.
	Endpoints []string
	// HTTP is the underlying transport; nil uses a client with a 10 s
	// request timeout.
	HTTP *http.Client
	// ClientID is sent as X-Client-ID so the server's rate limiter keys
	// on a stable identity rather than the ephemeral remote port.
	ClientID string
	// MaxAttempts bounds tries per call (first attempt included); 0 = 5.
	MaxAttempts int
	// BackoffBase scales the full-jitter delay; 0 = 50 ms.
	BackoffBase time.Duration
	// BackoffCap bounds one delay; 0 = 2 s.
	BackoffCap time.Duration
	// Rand drives the jitter and the endpoint probe order; nil derives a
	// source from (endpoints, ClientID) at first use, so two clients with
	// equal config draw identical backoff schedules and probe orders and
	// tests stay reproducible without injection.
	Rand *rand.Rand

	mu       sync.Mutex // guards Rand, order, cur, override
	order    []int      // seeded permutation of Endpoints
	cur      int        // index into order
	override string     // primary hint pinned from a 421 redirect
}

// sharedTransport is the package-wide keep-alive transport every Client
// without an explicit HTTP client rides on. One transport means one
// connection pool: sequential requests to the same authority reuse a warm
// TCP connection instead of re-dialing per call (the stdlib default of 2
// idle conns per host collapses under the loadgen's 8 workers and
// understates service throughput).
var sharedTransport = &http.Transport{
	Proxy:               http.ProxyFromEnvironment,
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 64,
	IdleConnTimeout:     90 * time.Second,
}

// sharedHTTPClient pairs the shared transport with the default request
// timeout; http.Client is stateless beyond its transport, so one instance
// serves every Client concurrently.
var sharedHTTPClient = &http.Client{
	Timeout:   10 * time.Second,
	Transport: sharedTransport,
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return sharedHTTPClient
}

func (c *Client) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 5
}

// jitter draws the full-jitter delay before retry k (k = 1 first retry).
func (c *Client) jitter(k int) time.Duration {
	base := c.BackoffBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	cap := c.BackoffCap
	if cap <= 0 {
		cap = 2 * time.Second
	}
	window := base << (k - 1)
	if window > cap || window <= 0 {
		window = cap
	}
	c.mu.Lock()
	c.ensureRandLocked()
	d := time.Duration(c.Rand.Int63n(int64(window) + 1))
	c.mu.Unlock()
	return d
}

// ensureRandLocked seeds Rand from (endpoints, ClientID); caller holds mu.
func (c *Client) ensureRandLocked() {
	if c.Rand != nil {
		return
	}
	h := fnv.New64a()
	h.Write([]byte(c.Base))
	for _, ep := range c.Endpoints {
		h.Write([]byte{0})
		h.Write([]byte(ep))
	}
	h.Write([]byte{0})
	h.Write([]byte(c.ClientID))
	c.Rand = rand.New(rand.NewSource(int64(h.Sum64())))
}

// currentBase picks the URL for the next attempt: a pinned primary hint
// wins; otherwise the current position in the seeded permutation of
// Endpoints; otherwise Base.
func (c *Client) currentBase() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.override != "" {
		return c.override
	}
	if len(c.Endpoints) == 0 {
		return c.Base
	}
	if len(c.order) != len(c.Endpoints) {
		c.ensureRandLocked()
		c.order = c.Rand.Perm(len(c.Endpoints))
		c.cur = 0
	}
	return c.Endpoints[c.order[c.cur]]
}

// rotate abandons the endpoint that just failed: a failed pinned hint is
// dropped back to the permutation; otherwise the permutation advances.
func (c *Client) rotate(failed string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.override != "" {
		if c.override == failed {
			c.override = ""
		}
		return
	}
	if len(c.order) > 0 {
		c.cur = (c.cur + 1) % len(c.order)
	}
}

// pin records the primary hint from a 421 redirect for the next attempt.
func (c *Client) pin(primary string) {
	c.mu.Lock()
	c.override = primary
	c.mu.Unlock()
}

// retryable reports whether a response status deserves another attempt.
// 421 retries because the client re-aims at the hinted primary.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusMisdirectedRequest ||
		status >= 500
}

// apiError converts a non-2xx response into the typed taxonomy.
func apiError(status int, body []byte) error {
	var eb errorBody
	msg := string(bytes.TrimSpace(body))
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	switch status {
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", ErrExhausted, msg)
	case http.StatusTooManyRequests:
		return fmt.Errorf("%w: %s", ErrRateLimited, msg)
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, msg)
	case http.StatusRequestEntityTooLarge:
		return fmt.Errorf("%w: %s", ErrTooLarge, msg)
	case http.StatusBadRequest:
		return fmt.Errorf("%w: %s", ErrField, msg)
	case http.StatusMisdirectedRequest:
		return fmt.Errorf("%w: %s", ErrNotPrimary, msg)
	default:
		return fmt.Errorf("authd: server status %d: %s", status, msg)
	}
}

// do runs one call with retries: POST with a JSON body when in != nil,
// GET otherwise; the 2xx response body is decoded into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var reqBody []byte
	if in != nil {
		var err error
		reqBody, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("authd: encode request: %w", err)
		}
	}
	var lastErr error
	unavailable := false
	for attempt := 1; attempt <= c.attempts(); attempt++ {
		if attempt > 1 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.jitter(attempt - 1)): //jrsnd:allow wallclock real sleep between retries against a live HTTP server; never runs under the simulator
			}
		}
		base := c.currentBase()
		req, err := http.NewRequestWithContext(ctx, method, base+path, bytes.NewReader(reqBody))
		if err != nil {
			return fmt.Errorf("authd: build request: %w", err)
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.ClientID != "" {
			req.Header.Set("X-Client-ID", c.ClientID)
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Transport failure: this replica may be dead; try the next.
			c.rotate(base)
			lastErr, unavailable = err, true
			continue
		}
		hint := resp.Header.Get("X-JRSND-Primary")
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
		resp.Body.Close()
		if err != nil {
			c.rotate(base)
			lastErr, unavailable = err, true
			continue
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(body, out); err != nil {
				return fmt.Errorf("authd: decode response: %w", err)
			}
			return nil
		}
		lastErr = apiError(resp.StatusCode, body)
		if !retryable(resp.StatusCode) {
			return lastErr
		}
		switch {
		case resp.StatusCode == http.StatusMisdirectedRequest:
			// A follower refused the mutation. Pin its primary hint; with
			// no hint, walk the permutation until the primary turns up.
			unavailable = true
			if hint != "" {
				c.pin(hint)
			} else {
				c.rotate(base)
			}
		case resp.StatusCode >= 500:
			c.rotate(base)
			unavailable = true
		}
	}
	if unavailable {
		return fmt.Errorf("%w: %d attempts exhausted: %v", ErrUnavailable, c.attempts(), lastErr)
	}
	return fmt.Errorf("authd: %d attempts exhausted: %w", c.attempts(), lastErr)
}

// Provision claims count deployment slots. ErrExhausted (wrapped) means
// the deployment is fully provisioned and the caller should Join instead.
func (c *Client) Provision(ctx context.Context, count int, tag string) (ProvisionResponse, error) {
	var out ProvisionResponse
	err := c.do(ctx, http.MethodPost, "/v1/provision", ProvisionRequest{Count: count, Tag: tag}, &out)
	return out, err
}

// Join admits one late node (§V-A).
func (c *Client) Join(ctx context.Context, tag string) (JoinResponse, error) {
	var out JoinResponse
	err := c.do(ctx, http.MethodPost, "/v1/join", JoinRequest{Tag: tag}, &out)
	return out, err
}

// Revoke reports one invalid request under code (§V-D).
func (c *Client) Revoke(ctx context.Context, code int32) (RevokeResult, error) {
	var out RevokeResult
	err := c.do(ctx, http.MethodPost, "/v1/revoke", RevokeRequest{Code: code}, &out)
	return out, err
}

// Epoch fetches the distribution-state counters.
func (c *Client) Epoch(ctx context.Context) (EpochInfo, error) {
	var out EpochInfo
	err := c.do(ctx, http.MethodGet, "/v1/epoch", nil, &out)
	return out, err
}

// Node fetches one node's assignment record.
func (c *Client) Node(ctx context.Context, id int) (NodeInfo, error) {
	var out NodeInfo
	err := c.do(ctx, http.MethodGet, "/v1/node?id="+strconv.Itoa(id), nil, &out)
	return out, err
}

// Healthz probes liveness (no retries beyond the usual loop).
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
