package authd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// Replication-layer tests: the tracker's fetch statuses and fingerprint
// chain, the wire codec, follower replication end to end (including
// snapshot catch-up and divergence), synchronous-replication
// acknowledgment, the promotion gate, client failover, and the
// replication metrics exposition.

// newPrimary boots a durable primary on a real listener.
func newPrimary(t *testing.T, snapEvery int, minSync int) (*Server, string) {
	t.Helper()
	cfg := Config{
		Params: testParams(64, 4, 4),
		Seed:   11,
		Rate:   -1,
		Durable: Durability{
			Dir:           t.TempDir(),
			SnapshotEvery: snapEvery,
		},
		Replication: ReplicationConfig{MinSync: minSync, SyncTimeout: 2 * time.Second},
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, "http://" + addr
}

// newFollowerOf starts a managed follower replicating from primaryURL.
func newFollowerOf(t *testing.T, primaryURL string) (*Follower, string) {
	t.Helper()
	f, err := StartFollower(FollowerConfig{
		Server: Config{
			Params:  testParams(64, 4, 4),
			Seed:    11,
			Rate:    -1,
			Durable: Durability{Dir: t.TempDir(), SnapshotEvery: -1},
		},
		Primaries:    []string{primaryURL},
		ID:           t.Name(),
		PollInterval: 5 * time.Millisecond,
		WaitMS:       50,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := f.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = f.Close(ctx)
	})
	return f, "http://" + addr
}

// waitFollowerSynced polls until the follower reports the primary's exact
// (sequence, fingerprint) or the deadline passes.
func waitFollowerSynced(t *testing.T, prim *Server, f *Follower) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		fsrv := f.Server()
		if fsrv.repl.lastSeq() == prim.repl.lastSeq() && fsrv.repl.chainFP() == prim.repl.chainFP() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower never converged: follower seq %d fp %016x, primary seq %d fp %016x",
		f.Server().repl.lastSeq(), f.Server().repl.chainFP(), prim.repl.lastSeq(), prim.repl.chainFP())
}

// TestReplTrackerStatuses drives the tracker through its three fetch
// outcomes: in-stream OK, compacted-away snapshotNeeded, and the two
// divergent shapes (stale tail beyond the head, wrong fingerprint).
func TestReplTrackerStatuses(t *testing.T) {
	tr := newReplTracker()
	frames := make([][]byte, 0, 4)
	for i := 1; i <= 4; i++ {
		frame, err := appendWALRecord(nil, walRecord{Seq: uint64(i), Kind: walRevoke, Code: int32(i), At: 1})
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
		tr.extend(uint64(i), walRevoke, frame, uint64(100+i))
	}

	status, ents, lastSeq, _ := tr.fetch(0, fpBasis, 10)
	if status != replOK || len(ents) != 4 || lastSeq != 4 {
		t.Fatalf("fetch(0) = status %d, %d entries, lastSeq %d; want OK, 4, 4", status, len(ents), lastSeq)
	}
	for i, e := range ents {
		if e.seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d", i, e.seq)
		}
		if string(e.frame) != string(frames[i]) {
			t.Fatalf("entry %d frame does not round-trip", i)
		}
	}

	// Resuming mid-stream with the right fingerprint: the remainder.
	status, ents, _, _ = tr.fetch(2, ents[1].fp, 10)
	if status != replOK || len(ents) != 2 {
		t.Fatalf("fetch(2) = status %d, %d entries; want OK, 2", status, len(ents))
	}

	// Wrong fingerprint at a held position: divergent.
	status, _, _, _ = tr.fetch(2, 0xdeadbeef, 10)
	if status != replDivergent {
		t.Fatalf("fetch(2, bad fp) = status %d, want divergent", status)
	}

	// Beyond the head: a stale tail from another history — divergent.
	status, _, _, _ = tr.fetch(9, 0, 10)
	if status != replDivergent {
		t.Fatalf("fetch(9) = status %d, want divergent", status)
	}

	// Compact past seq 3: positions before it now need a snapshot.
	tr.compact(3)
	status, _, _, snapSeq := tr.fetch(1, 0, 10)
	if status != replSnapshotNeeded || snapSeq != 3 {
		t.Fatalf("fetch(1) after compact(3) = status %d snapSeq %d; want snapshotNeeded, 3", status, snapSeq)
	}
	// The base position itself still streams.
	status, ents, _, _ = tr.fetch(3, tr.fpAt(3), 10)
	if status != replOK || len(ents) != 1 || ents[0].seq != 4 {
		t.Fatalf("fetch(3) after compact(3) = status %d, %d entries; want OK, [seq 4]", status, len(ents))
	}
}

// fpAt is a test helper exposing fpAtLocked.
func (t *replTracker) fpAt(seq uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fpAtLocked(seq)
}

// TestReplResponseRoundTrip checks the wire codec both ways and its
// bounded-decode rejections.
func TestReplResponseRoundTrip(t *testing.T) {
	frame, err := appendWALRecord(nil, walRecord{Seq: 7, Kind: walJoin, Node: 3, Tag: "x", At: 5})
	if err != nil {
		t.Fatal(err)
	}
	ents := []replEntry{{seq: 7, fp: 0xabc, frame: frame}}
	raw := encodeReplResponse(replOK, 9, 4, ents)
	b, err := decodeReplResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if b.status != replOK || b.lastSeq != 9 || b.snapSeq != 4 || len(b.entries) != 1 {
		t.Fatalf("decoded %+v", b)
	}
	// The sequence lives inside the frame, not beside it: decode proves it.
	if b.entries[0].fp != 0xabc || string(b.entries[0].frame) != string(frame) {
		t.Fatalf("entry did not round-trip: %+v", b.entries[0])
	}
	rec, _, err := parseWALRecord(b.entries[0].frame)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 7 {
		t.Fatalf("decoded frame carries seq %d, want 7", rec.Seq)
	}

	if _, err := decodeReplResponse(raw[:len(raw)-1]); err == nil {
		t.Fatal("truncated response decoded")
	}
	if _, err := decodeReplResponse(append(raw, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := decodeReplResponse([]byte{99}); err == nil {
		t.Fatal("bad status accepted")
	}
}

// TestApplyReplicatedMatchesPrimary replicates a primary's stream into a
// follower-role server record by record and requires the fingerprint
// chains to agree at every step — determinism of the state machine is
// what makes follower promotion sound.
func TestApplyReplicatedMatchesPrimary(t *testing.T) {
	prim, err := New(Config{
		Params:  testParams(64, 4, 4),
		Seed:    11,
		Rate:    -1,
		Durable: Durability{Dir: t.TempDir(), SnapshotEvery: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := New(Config{
		Params:   testParams(64, 4, 4),
		Seed:     11,
		Rate:     -1,
		Follower: true,
		Durable:  Durability{Dir: t.TempDir(), SnapshotEvery: -1},
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := prim.provision(3, "repl"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := prim.join("late"); err != nil {
		t.Fatal(err)
	}
	if _, err := prim.revoke(2); err != nil {
		t.Fatal(err)
	}

	_, ents, lastSeq, _ := prim.repl.fetch(0, fpBasis, 100)
	if lastSeq != 3 || len(ents) != 3 {
		t.Fatalf("primary streamed %d entries to seq %d, want 3 to 3", len(ents), lastSeq)
	}
	for _, e := range ents {
		if err := fol.applyReplicated(e.frame, e.fp); err != nil {
			t.Fatalf("apply seq %d: %v", e.seq, err)
		}
		if got := fol.repl.chainFP(); got != e.fp {
			t.Fatalf("after seq %d follower fp %016x, primary chained %016x", e.seq, got, e.fp)
		}
	}
	if fol.repl.lastSeq() != prim.repl.lastSeq() || fol.repl.chainFP() != prim.repl.chainFP() {
		t.Fatalf("replicas disagree: follower (%d, %016x) primary (%d, %016x)",
			fol.repl.lastSeq(), fol.repl.chainFP(), prim.repl.lastSeq(), prim.repl.chainFP())
	}

	// The replicated state answers reads identically.
	fi := fol.epochInfo()
	pi := prim.epochInfo()
	if fi != pi {
		t.Fatalf("epoch info diverged: follower %+v primary %+v", fi, pi)
	}
}

// TestApplyReplicatedDivergenceIsLoud feeds a follower a record whose
// claimed fingerprint cannot match and requires the loud-failure
// contract: ErrReplicaDiverged, the divergence counter, and a poisoned
// durable layer that refuses every further mutation.
func TestApplyReplicatedDivergenceIsLoud(t *testing.T) {
	fol, err := New(Config{
		Params:   testParams(64, 4, 4),
		Seed:     11,
		Rate:     -1,
		Follower: true,
		Durable:  Durability{Dir: t.TempDir(), SnapshotEvery: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := appendWALRecord(nil, walRecord{Seq: 1, Kind: walRevoke, Code: 1, At: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = fol.applyReplicated(frame, 0x1234)
	if !errors.Is(err, ErrReplicaDiverged) {
		t.Fatalf("apply with impossible fingerprint = %v, want ErrReplicaDiverged", err)
	}

	// Poisoned: the durable layer refuses further records.
	frame2, _ := appendWALRecord(nil, walRecord{Seq: 2, Kind: walRevoke, Code: 2, At: 1})
	if err := fol.applyReplicated(frame2, 0x5678); err == nil {
		t.Fatal("poisoned follower accepted another record")
	}

	// The counter is on the exposition surface.
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	fol.Handler().ServeHTTP(w, req)
	if !strings.Contains(w.Body.String(), "jrsnd_authd_divergence_panics_total 1") {
		t.Fatalf("/metrics missing divergence counter:\n%s", w.Body.String())
	}
}

// TestFollowerReplicatesEndToEnd runs a real primary/follower pair over
// HTTP: mutations land on the primary, the follower converges to the
// same fingerprint, serves reads, and refuses mutations with a 421 that
// names the primary.
func TestFollowerReplicatesEndToEnd(t *testing.T) {
	prim, primURL := newPrimary(t, -1, 0)
	f, folURL := newFollowerOf(t, primURL)

	cl := &Client{Base: primURL, ClientID: t.Name()}
	ctx := context.Background()
	res, err := cl.Provision(ctx, 3, "repl")
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq == 0 {
		t.Fatal("durable provision carried no sequence")
	}
	if _, err := cl.Join(ctx, "late"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Revoke(ctx, 2); err != nil {
		t.Fatal(err)
	}
	waitFollowerSynced(t, prim, f)

	// Reads serve from the follower.
	fcl := &Client{Base: folURL, ClientID: t.Name() + "-reads"}
	ni, err := fcl.Node(ctx, res.Nodes[0].Node)
	if err != nil {
		t.Fatalf("follower read: %v", err)
	}
	if len(ni.Codes) != len(res.Nodes[0].Codes) {
		t.Fatalf("follower node codes %v, acked %v", ni.Codes, res.Nodes[0].Codes)
	}

	// Mutations on the follower: 421 with the primary hint.
	resp, err := http.Post(folURL+"/v1/provision", "application/json", strings.NewReader(`{"count":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower mutation = %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get("X-JRSND-Primary"); got != primURL {
		t.Fatalf("421 hint %q, want %q", got, primURL)
	}

	// Replication status from both sides.
	pst, err := FetchReplicationStatus(nil, primURL)
	if err != nil {
		t.Fatal(err)
	}
	if pst.Role != "primary" || !pst.Durable || pst.LastSeq != prim.repl.lastSeq() {
		t.Fatalf("primary status %+v", pst)
	}
	if n := len(pst.Followers); n != 1 {
		t.Fatalf("primary reports %d follower acks, want 1 (%+v)", n, pst.Followers)
	}
	fst, err := FetchReplicationStatus(nil, folURL)
	if err != nil {
		t.Fatal(err)
	}
	if fst.Role != "follower" || fst.Primary != primURL || fst.FP != pst.FP {
		t.Fatalf("follower status %+v vs primary %+v", fst, pst)
	}
}

// TestFollowerSnapshotCatchup starts a follower against a primary whose
// stream has already been compacted by snapshots: the only way in is the
// snapshot transfer, and the catch-up counter must say it happened.
func TestFollowerSnapshotCatchup(t *testing.T) {
	prim, primURL := newPrimary(t, 4, 0)
	cl := &Client{Base: primURL, ClientID: t.Name()}
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		if _, err := cl.Revoke(ctx, int32(i%5)); err != nil {
			t.Fatal(err)
		}
	}
	if base := func() uint64 { prim.repl.mu.Lock(); defer prim.repl.mu.Unlock(); return prim.repl.baseSeq }(); base == 0 {
		t.Fatal("primary never compacted; the catch-up path is not exercised")
	}

	f, folURL := newFollowerOf(t, primURL)
	waitFollowerSynced(t, prim, f)

	resp, err := http.Get(folURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	resp.Body.Close()
	if !strings.Contains(string(body), "jrsnd_authd_catchup_snapshots_total 1") {
		t.Fatalf("follower /metrics missing catch-up counter:\n%s", body)
	}

	// Post-catch-up replication still streams incrementally.
	if _, err := cl.Revoke(ctx, 1); err != nil {
		t.Fatal(err)
	}
	waitFollowerSynced(t, prim, f)
}

// replGet is a raw replication fetch, standing in for a follower.
func replGet(t *testing.T, base, id string, after, fp uint64, waitMS int) replBatch {
	t.Helper()
	url := fmt.Sprintf("%s/v1/replicate?after=%d&fp=%016x&max=64&wait_ms=%d", base, after, fp, waitMS)
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-JRSND-Follower", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, replMaxResp+1))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replicate fetch: %s: %s", resp.Status, body)
	}
	b, err := decodeReplResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMinSyncAcknowledgment: with MinSync 1 a mutation is acknowledged
// only after a follower's fetch cursor covers it, and times out with 503
// when no follower keeps up.
func TestMinSyncAcknowledgment(t *testing.T) {
	_, primURL := newPrimary(t, -1, 1)

	// No follower at all: the mutation must come back 503 after the sync
	// timeout (the config uses 2 s).
	slow := &Client{Base: primURL, ClientID: t.Name(), MaxAttempts: 1}
	start := time.Now()
	_, err := slow.Provision(context.Background(), 1, "unsynced")
	if err == nil {
		t.Fatal("mutation acknowledged with no follower under MinSync 1")
	}
	if !strings.Contains(err.Error(), "sync") {
		t.Fatalf("unsynced mutation error %v, want a sync-timeout failure", err)
	}
	if time.Since(start) < time.Second {
		t.Fatalf("503 came back in %v — the primary did not wait for the sync window", time.Since(start))
	}

	// With a fetching follower the same mutation acknowledges promptly:
	// run the mutation concurrently with a minimal hand-rolled follower
	// whose advancing `after` cursor is the durable acknowledgment.
	done := make(chan error, 1)
	go func() {
		_, err := (&Client{Base: primURL, ClientID: t.Name() + "-synced", MaxAttempts: 1}).
			Provision(context.Background(), 1, "synced")
		done <- err
	}()
	after, fp := uint64(0), uint64(fpBasis)
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("mutation with live follower: %v", err)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("mutation never acknowledged despite follower acks")
		}
		b := replGet(t, primURL, "hand-follower", after, fp, 50)
		if b.status != replOK {
			t.Fatalf("hand follower got status %d", b.status)
		}
		if n := len(b.entries); n > 0 {
			// Entries are the contiguous records after the cursor; the seq is
			// inside each frame, so advance by count.
			after += uint64(n)
			fp = b.entries[n-1].fp
		}
	}
}

// TestPromotionGate: a follower refuses promotion while it lacks the
// acknowledged prefix (409) and accepts once it holds it; after
// promotion it acknowledges mutations as the primary.
func TestPromotionGate(t *testing.T) {
	prim, primURL := newPrimary(t, -1, 0)
	f, folURL := newFollowerOf(t, primURL)

	cl := &Client{Base: primURL, ClientID: t.Name()}
	ctx := context.Background()
	res, err := cl.Provision(ctx, 2, "pre")
	if err != nil {
		t.Fatal(err)
	}
	waitFollowerSynced(t, prim, f)

	promote := func(url string, minSeq uint64) int {
		resp, err := http.Post(url+"/v1/promote", "application/json",
			strings.NewReader(fmt.Sprintf(`{"min_seq":%d}`, minSeq)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return resp.StatusCode
	}

	// Beyond what the follower holds: refused, still a follower.
	if code := promote(folURL, res.Seq+100); code != http.StatusConflict {
		t.Fatalf("premature promotion = %d, want 409", code)
	}
	if !f.Server().isFollower() {
		t.Fatal("refused promotion still flipped the role")
	}

	// At the acknowledged prefix: accepted.
	if code := promote(folURL, res.Seq); code != http.StatusOK {
		t.Fatalf("promotion = %d, want 200", code)
	}
	if f.Server().isFollower() {
		t.Fatal("accepted promotion did not flip the role")
	}

	// The promoted replica acknowledges mutations and its exposition says
	// primary.
	ncl := &Client{Base: folURL, ClientID: t.Name() + "-post"}
	if _, err := ncl.Provision(ctx, 1, "post-promotion"); err != nil {
		t.Fatalf("mutation on promoted replica: %v", err)
	}
	resp, err := http.Get(folURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	resp.Body.Close()
	if !strings.Contains(string(body), `jrsnd_authd_role{role="primary"} 1`) {
		t.Fatalf("promoted replica /metrics does not report the primary role:\n%s", body)
	}
}

// TestClientFailoverDeterministicOrder: two clients with identical
// configuration walk identical endpoint permutations — failover behavior
// is reproducible without injection.
func TestClientFailoverDeterministicOrder(t *testing.T) {
	eps := []string{"http://a:1", "http://b:2", "http://c:3"}
	c1 := &Client{Endpoints: eps, ClientID: "same"}
	c2 := &Client{Endpoints: eps, ClientID: "same"}
	for i := 0; i < 6; i++ {
		b1, b2 := c1.currentBase(), c2.currentBase()
		if b1 != b2 {
			t.Fatalf("step %d: clients diverged (%s vs %s)", i, b1, b2)
		}
		c1.rotate(b1)
		c2.rotate(b2)
	}

	// A pinned hint overrides the permutation; a failure on the pinned
	// endpoint drops back to it.
	c1.pin("http://primary:9")
	if got := c1.currentBase(); got != "http://primary:9" {
		t.Fatalf("pinned base %s", got)
	}
	c1.rotate("http://primary:9")
	if got := c1.currentBase(); got == "http://primary:9" {
		t.Fatal("failed pin still selected")
	}
}

// TestClientFailoverRedirect: a mutation aimed at a replica set whose
// first probes hit followers or dead endpoints still lands, via rotation
// and the 421 pin; exhausting everything yields ErrUnavailable.
func TestClientFailoverRedirect(t *testing.T) {
	prim, primURL := newPrimary(t, -1, 0)
	f, folURL := newFollowerOf(t, primURL)
	_ = f

	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // a replica that is down: connection refused

	cl := &Client{Endpoints: []string{deadURL, folURL, primURL}, ClientID: t.Name()}
	res, err := cl.Provision(context.Background(), 1, "failover")
	if err != nil {
		t.Fatalf("provision across mixed replica set: %v", err)
	}
	if res.Seq == 0 || res.Seq != prim.repl.lastSeq() {
		t.Fatalf("mutation did not land on the primary (seq %d, primary at %d)", res.Seq, prim.repl.lastSeq())
	}

	// All endpoints down or follower-only: ErrUnavailable.
	only := &Client{Endpoints: []string{deadURL}, ClientID: t.Name(), MaxAttempts: 2, BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond}
	if _, err := only.Provision(context.Background(), 1, "nowhere"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("dead replica set error %v, want ErrUnavailable", err)
	}
}

// TestConcurrentFailoverDuringPromotion hammers a two-replica set with
// concurrent failover clients while the primary shuts down and the
// follower is promoted; every outcome must be an acknowledged mutation
// or ErrUnavailable/ErrSyncTimeout-shaped unavailability — never a lost
// acknowledgment or a double assignment.
func TestConcurrentFailoverDuringPromotion(t *testing.T) {
	prim, primURL := newPrimary(t, -1, 0)
	f, folURL := newFollowerOf(t, primURL)

	cl := &Client{Base: primURL, ClientID: t.Name()}
	if _, err := cl.Provision(context.Background(), 1, "seed"); err != nil {
		t.Fatal(err)
	}
	waitFollowerSynced(t, prim, f)

	type acked struct {
		node  int
		codes string
	}
	var mu sync.Mutex
	var acks []acked

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := &Client{
				Endpoints:   []string{primURL, folURL},
				ClientID:    fmt.Sprintf("%s-%d", t.Name(), w),
				MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffCap: 5 * time.Millisecond,
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				res, err := c.Join(ctx, "churn")
				cancel()
				if err == nil {
					mu.Lock()
					acks = append(acks, acked{node: res.Node, codes: fmt.Sprint(res.Codes)})
					mu.Unlock()
				} else if !errors.Is(err, ErrUnavailable) && !errors.Is(err, ErrExhausted) && !errors.Is(err, ErrSyncTimeout) {
					t.Errorf("worker %d: unexpected failure shape: %v", w, err)
					return
				}
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = prim.Shutdown(ctx)
	cancel()
	resp, err := http.Post(folURL+"/v1/promote", "application/json",
		strings.NewReader(fmt.Sprintf(`{"min_seq":%d}`, f.Server().repl.lastSeq())))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promotion during churn = %d", resp.StatusCode)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Every acknowledged admission must still be present on the survivor
	// with exactly its acked codes, each node acked at most once.
	ncl := &Client{Base: folURL, ClientID: t.Name() + "-verify"}
	seen := map[int]string{}
	for _, a := range acks {
		if prev, ok := seen[a.node]; ok && prev != a.codes {
			t.Fatalf("node %d acknowledged twice with different codes", a.node)
		}
		seen[a.node] = a.codes
		ni, err := ncl.Node(context.Background(), a.node)
		if err != nil {
			t.Fatalf("acked node %d lost after promotion: %v", a.node, err)
		}
		if fmt.Sprint(ni.Codes) != a.codes {
			t.Fatalf("node %d holds %v, acked %s", a.node, ni.Codes, a.codes)
		}
	}
	if len(acks) == 0 {
		t.Fatal("no mutation was acknowledged during the churn window — the test exercised nothing")
	}
}

// TestReplicationMetricsExposition pins the exposition surface: role
// gauges, lag gauge, and the streamed/applied counters on both sides of
// a replicating pair.
func TestReplicationMetricsExposition(t *testing.T) {
	prim, primURL := newPrimary(t, -1, 0)
	f, folURL := newFollowerOf(t, primURL)

	cl := &Client{Base: primURL, ClientID: t.Name()}
	for i := 0; i < 3; i++ {
		if _, err := cl.Revoke(context.Background(), int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFollowerSynced(t, prim, f)

	scrape := func(url string) string {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	pm := scrape(primURL)
	for _, want := range []string{
		`jrsnd_authd_role{role="primary"} 1`,
		`jrsnd_authd_role{role="follower"} 0`,
		"jrsnd_authd_replication_streamed_records_total 3",
		"jrsnd_authd_divergence_panics_total 0",
	} {
		if !strings.Contains(pm, want) {
			t.Fatalf("primary /metrics missing %q:\n%s", want, pm)
		}
	}

	fm := scrape(folURL)
	for _, want := range []string{
		`jrsnd_authd_role{role="primary"} 0`,
		`jrsnd_authd_role{role="follower"} 1`,
		"jrsnd_authd_replication_applied_records_total 3",
		"jrsnd_authd_replication_lag_records 0",
		"jrsnd_authd_catchup_snapshots_total 0",
	} {
		if !strings.Contains(fm, want) {
			t.Fatalf("follower /metrics missing %q:\n%s", want, fm)
		}
	}
}
