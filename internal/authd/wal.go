package authd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"repro/internal/metrics"
)

// Write-ahead log: every provision/join/revoke mutation is appended as a
// length-prefixed, checksummed binary record *before* the HTTP response
// acknowledges it, in the internal/wire framing style (fixed big-endian
// header, strictly bounded variable-length fields, typed error taxonomy).
// Replaying the log through the same deterministic code paths that served
// the live traffic reconstructs the authority's exact state after a crash
// — see recover.go for the replay and the torn-tail rule.
//
// Record layout (all integers big-endian):
//
//	byte  0      version (currently 1)
//	byte  1      kind (walProvision | walJoin | walRevoke)
//	bytes 2..5   uint32 body length
//	bytes 6..13  uint64 sequence number (1-based, strictly consecutive)
//	bytes 14..17 uint32 CRC-32C over bytes 0..13 and the body
//	bytes 18..   body (per-kind encoding, see encodeWALBody)
//
// The CRC covers the sequence number, so a torn or bit-flipped record can
// never masquerade as a valid successor of a different record.

// WAL format constants.
const (
	walVersion   = 1
	walHeaderLen = 18
	// walMaxBody caps a declared record body before any allocation — the
	// bounded-decode discipline of internal/wire. Honest bodies are tiny
	// (a tag plus a few fixed fields), so 64 KiB is generous headroom.
	walMaxBody = 1 << 16
	// walMaxTag caps the stored client tag, comfortably above the service
	// decode cap (Limits.MaxTag, default 128).
	walMaxTag = 1 << 10
)

// walKind enumerates the mutation record kinds.
type walKind uint8

const (
	walProvision walKind = iota + 1
	walJoin
	walRevoke
	numWALKinds = walRevoke
)

// Typed WAL error taxonomy, mirroring the wire codec's.
var (
	// ErrWALTruncated: the data ends before a declared record does — the
	// torn-tail shape recovery truncates away.
	ErrWALTruncated = errors.New("authd: truncated WAL record")
	// ErrWALCorrupt: a record in the middle of the log is damaged (bad
	// checksum, bad kind, sequence gap) while valid records follow it.
	// Recovery refuses to skip it — that would silently drop an
	// acknowledged mutation.
	ErrWALCorrupt = errors.New("authd: corrupt WAL")
	// ErrWALClosed: the log was closed (drain finished) or a previous
	// append failed; the server refuses further mutations.
	ErrWALClosed = errors.New("authd: WAL closed")
)

// crcTable is the Castagnoli polynomial, the same choice as storage
// systems that care about short-record integrity.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// walRecord is one decoded mutation. Kind selects which fields are
// meaningful.
type walRecord struct {
	Seq  uint64
	Kind walKind

	// walProvision: the claimed deployment-slot range [Start, Start+Count).
	Start int
	Count int

	// walJoin: the node index the §V-A admission produced, and whether it
	// forced a batch expansion (an epoch advance). Node doubles as the
	// replay assertion: a replayed join must reproduce exactly this index.
	Node     int
	Expanded bool

	// walRevoke: the reported code.
	Code int32

	// Tag is the client label stored with provision/join assignments.
	Tag string
	// At is the assignment wall-clock timestamp (Unix nanoseconds),
	// preserved so recovered registry records keep their original times.
	At int64
}

// appendWALRecord encodes rec (with its Seq already assigned) onto dst.
func appendWALRecord(dst []byte, rec walRecord) ([]byte, error) {
	body, err := encodeWALBody(rec)
	if err != nil {
		return dst, err
	}
	var hdr [walHeaderLen]byte
	hdr[0] = walVersion
	hdr[1] = byte(rec.Kind)
	binary.BigEndian.PutUint32(hdr[2:6], uint32(len(body)))
	binary.BigEndian.PutUint64(hdr[6:14], rec.Seq)
	crc := crc32.Checksum(hdr[:14], crcTable)
	crc = crc32.Update(crc, crcTable, body)
	binary.BigEndian.PutUint32(hdr[14:18], crc)
	dst = append(dst, hdr[:]...)
	dst = append(dst, body...)
	return dst, nil
}

// encodeWALBody renders the per-kind payload.
func encodeWALBody(rec walRecord) ([]byte, error) {
	if len(rec.Tag) > walMaxTag {
		return nil, fmt.Errorf("%w: tag %d bytes > %d", ErrWALCorrupt, len(rec.Tag), walMaxTag)
	}
	var b []byte
	switch rec.Kind {
	case walProvision:
		if rec.Start < 0 || rec.Count < 1 {
			return nil, fmt.Errorf("%w: provision range [%d,+%d)", ErrWALCorrupt, rec.Start, rec.Count)
		}
		b = make([]byte, 0, 18+len(rec.Tag))
		b = binary.BigEndian.AppendUint32(b, uint32(rec.Start))
		b = binary.BigEndian.AppendUint32(b, uint32(rec.Count))
		b = binary.BigEndian.AppendUint64(b, uint64(rec.At))
		b = binary.BigEndian.AppendUint16(b, uint16(len(rec.Tag)))
		b = append(b, rec.Tag...)
	case walJoin:
		if rec.Node < 0 {
			return nil, fmt.Errorf("%w: join node %d", ErrWALCorrupt, rec.Node)
		}
		b = make([]byte, 0, 15+len(rec.Tag))
		b = binary.BigEndian.AppendUint32(b, uint32(rec.Node))
		if rec.Expanded {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.BigEndian.AppendUint64(b, uint64(rec.At))
		b = binary.BigEndian.AppendUint16(b, uint16(len(rec.Tag)))
		b = append(b, rec.Tag...)
	case walRevoke:
		if rec.Code < 0 {
			return nil, fmt.Errorf("%w: revoke code %d", ErrWALCorrupt, rec.Code)
		}
		b = make([]byte, 0, 12)
		b = binary.BigEndian.AppendUint32(b, uint32(rec.Code))
		b = binary.BigEndian.AppendUint64(b, uint64(rec.At))
	default:
		return nil, fmt.Errorf("%w: record kind %d", ErrWALCorrupt, rec.Kind)
	}
	return b, nil
}

// parseWALRecord decodes the record at the front of data, returning the
// record and its total encoded length. ErrWALTruncated means data ends
// mid-record; every other failure wraps ErrWALCorrupt.
func parseWALRecord(data []byte) (walRecord, int, error) {
	if len(data) < walHeaderLen {
		return walRecord{}, 0, fmt.Errorf("%w: %d header bytes of %d", ErrWALTruncated, len(data), walHeaderLen)
	}
	if data[0] != walVersion {
		return walRecord{}, 0, fmt.Errorf("%w: version %d", ErrWALCorrupt, data[0])
	}
	kind := walKind(data[1])
	if kind < 1 || kind > numWALKinds {
		return walRecord{}, 0, fmt.Errorf("%w: record kind %d", ErrWALCorrupt, data[1])
	}
	bodyLen := int(binary.BigEndian.Uint32(data[2:6]))
	if bodyLen > walMaxBody {
		return walRecord{}, 0, fmt.Errorf("%w: body %d bytes > %d", ErrWALCorrupt, bodyLen, walMaxBody)
	}
	if len(data) < walHeaderLen+bodyLen {
		return walRecord{}, 0, fmt.Errorf("%w: %d body bytes of %d", ErrWALTruncated, len(data)-walHeaderLen, bodyLen)
	}
	body := data[walHeaderLen : walHeaderLen+bodyLen]
	want := binary.BigEndian.Uint32(data[14:18])
	crc := crc32.Checksum(data[:14], crcTable)
	crc = crc32.Update(crc, crcTable, body)
	if crc != want {
		return walRecord{}, 0, fmt.Errorf("%w: checksum %08x != %08x", ErrWALCorrupt, crc, want)
	}
	rec := walRecord{
		Seq:  binary.BigEndian.Uint64(data[6:14]),
		Kind: kind,
	}
	if err := decodeWALBody(&rec, body); err != nil {
		return walRecord{}, 0, err
	}
	return rec, walHeaderLen + bodyLen, nil
}

// decodeWALBody parses the per-kind payload, rejecting trailing bytes —
// the encoding is canonical, so a mismatch is corruption, not slack.
func decodeWALBody(rec *walRecord, body []byte) error {
	switch rec.Kind {
	case walProvision:
		if len(body) < 18 {
			return fmt.Errorf("%w: provision body %d bytes", ErrWALCorrupt, len(body))
		}
		rec.Start = int(binary.BigEndian.Uint32(body[0:4]))
		rec.Count = int(binary.BigEndian.Uint32(body[4:8]))
		rec.At = int64(binary.BigEndian.Uint64(body[8:16]))
		tagLen := int(binary.BigEndian.Uint16(body[16:18]))
		if tagLen > walMaxTag || len(body) != 18+tagLen {
			return fmt.Errorf("%w: provision tag %d bytes in %d-byte body", ErrWALCorrupt, tagLen, len(body))
		}
		rec.Tag = string(body[18:])
		if rec.Count < 1 {
			return fmt.Errorf("%w: provision count %d", ErrWALCorrupt, rec.Count)
		}
	case walJoin:
		if len(body) < 15 {
			return fmt.Errorf("%w: join body %d bytes", ErrWALCorrupt, len(body))
		}
		rec.Node = int(binary.BigEndian.Uint32(body[0:4]))
		switch body[4] {
		case 0:
			rec.Expanded = false
		case 1:
			rec.Expanded = true
		default:
			return fmt.Errorf("%w: join expanded byte %d", ErrWALCorrupt, body[4])
		}
		rec.At = int64(binary.BigEndian.Uint64(body[5:13]))
		tagLen := int(binary.BigEndian.Uint16(body[13:15]))
		if tagLen > walMaxTag || len(body) != 15+tagLen {
			return fmt.Errorf("%w: join tag %d bytes in %d-byte body", ErrWALCorrupt, tagLen, len(body))
		}
		rec.Tag = string(body[15:])
	case walRevoke:
		if len(body) != 12 {
			return fmt.Errorf("%w: revoke body %d bytes", ErrWALCorrupt, len(body))
		}
		code := binary.BigEndian.Uint32(body[0:4])
		if code > 1<<30 {
			return fmt.Errorf("%w: revoke code %d", ErrWALCorrupt, code)
		}
		rec.Code = int32(code)
		rec.At = int64(binary.BigEndian.Uint64(body[4:12]))
	}
	return nil
}

// scanWAL parses every record in data. On a clean log it returns all
// records and goodLen == len(data). On a damaged log it applies the
// torn-tail rule: if nothing beyond the first bad byte parses as a valid
// successor record, the damage is a torn tail — the records before it are
// returned and goodLen marks where recovery must truncate the file. If a
// valid successor *does* follow the damage, a middle record was lost and
// scanWAL refuses with ErrWALCorrupt: silently skipping it would drop an
// acknowledged mutation.
//
// Sequence numbers must be strictly consecutive; a gap or repeat is
// corruption (the CRC covers the sequence, so torn writes cannot fake
// continuity).
func scanWAL(data []byte) (recs []walRecord, goodLen int, err error) {
	off := 0
	var lastSeq uint64
	for off < len(data) {
		rec, n, perr := parseWALRecord(data[off:])
		if perr == nil && len(recs) > 0 && rec.Seq != lastSeq+1 {
			// The record parsed — its CRC (which covers the sequence) is
			// intact — yet it does not continue the chain. A torn write
			// cannot produce that; records went missing. Refuse outright.
			return nil, 0, fmt.Errorf("%w: sequence %d after %d at offset %d", ErrWALCorrupt, rec.Seq, lastSeq, off)
		}
		if perr != nil {
			if resyncOffset(data, off+1, lastSeq) >= 0 {
				return nil, 0, fmt.Errorf("%w: bad record at offset %d with valid records after it (%v)", ErrWALCorrupt, off, perr)
			}
			return recs, off, nil // torn tail: truncate here
		}
		recs = append(recs, rec)
		lastSeq = rec.Seq
		off += n
	}
	return recs, off, nil
}

// resyncOffset scans forward from offset from for any position that
// parses as a valid record with a sequence number beyond lastSeq —
// evidence that the damage sits in the *middle* of the log. Returns -1
// when no such record exists (the damage is a tail).
func resyncOffset(data []byte, from int, lastSeq uint64) int {
	for off := from; off+walHeaderLen <= len(data); off++ {
		if data[off] != walVersion {
			continue
		}
		rec, _, err := parseWALRecord(data[off:])
		if err == nil && rec.Seq > lastSeq {
			return off
		}
	}
	return -1
}

// wal is the append side of the log. Encoding and the file write are
// serialized under mu (they share one file offset); the fsync that makes
// a record durable is group-committed under syncMu: concurrent appends
// write their records back to back, then the first of them into syncMu
// fsyncs once for the whole group and the rest find their sequence
// already covered by the synced watermark. A failed append is sticky:
// once the log cannot be trusted to be ahead of the acknowledged state,
// every further mutation is refused.
//
// Lock order: syncMu before mu (syncTo reads the written watermark under
// mu while holding syncMu; truncate and close take both in that order).
// append takes mu alone, releases it, then enters syncTo.
type wal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	seq     uint64 // last assigned sequence number
	written uint64 // last sequence handed to the OS (guarded by mu)
	pending int    // appends since the last fsync (legacy inline path)
	// syncEvery batches fsyncs: 1 syncs every append (the durable
	// default), N>1 syncs every Nth (trading the tail for throughput).
	syncEvery int
	failed    error // sticky failure
	buf       []byte

	// groupCommit selects the coalesced fsync path. It is off when a
	// crash hook is armed (the crash points need the write+sync sequence
	// of one record to be a deterministic, uninterleaved unit) or when
	// syncEvery > 1 (the operator asked for counted batching instead).
	groupCommit bool
	syncMu      sync.Mutex
	synced      uint64 // last sequence known fsynced (guarded by syncMu)

	tracker *replTracker // replication buffer to extend per append; may be nil
	hook    CrashHook    // crash-fault injection; nil in production
	appends *metrics.Counter
	fsyncs  *metrics.Counter
}

// openWAL opens (creating if needed) the log file for appending. seq is
// the last sequence number recovery observed (snapshot or replay).
func openWAL(path string, seq uint64, syncEvery int, tracker *replTracker, hook CrashHook, appends, fsyncs *metrics.Counter) (*wal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("authd: open WAL: %w", err)
	}
	if syncEvery < 1 {
		syncEvery = 1
	}
	return &wal{
		f: f, path: path, seq: seq, written: seq, synced: seq, syncEvery: syncEvery,
		groupCommit: hook == nil && syncEvery == 1,
		tracker:     tracker, hook: hook, appends: appends, fsyncs: fsyncs,
	}, nil
}

// fire invokes the crash hook at a named point. In production the hook is
// nil; under the crash harness it may never return (process exit or a
// panic the harness recovers).
func (w *wal) fire(p CrashPoint) {
	if w.hook != nil {
		w.hook(p)
	}
}

// append assigns the next sequence number, encodes, writes, and makes
// the record durable per the sync policy, returning the assigned
// sequence. obs is the mutation's observation digest, chained into the
// replication fingerprint at the instant the record gains its place in
// the order. The caller acknowledges the mutation to the client strictly
// after this returns.
func (w *wal) append(rec walRecord, obs uint64) (uint64, error) {
	seq, err := w.appendLocked(rec, obs)
	if err != nil {
		return 0, err
	}
	if w.groupCommit {
		// The record is written but not yet durable; join (or lead) the
		// current fsync group outside mu so concurrent appends coalesce.
		if err := w.syncTo(seq); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// appendLocked is the mu-held half of append: sequence assignment,
// encode, write, and — on the legacy inline path — the fsync too.
func (w *wal) appendLocked(rec walRecord, obs uint64) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return 0, w.failed
	}
	if w.f == nil {
		return 0, ErrWALClosed
	}
	rec.Seq = w.seq + 1
	frame, err := appendWALRecord(w.buf[:0], rec)
	if err != nil {
		// The caller has already applied the mutation in memory; an
		// unloggable record is a divergence, so the failure is sticky.
		return 0, w.fail(err)
	}
	w.buf = frame[:0:cap(frame)]
	w.fire(CrashPreAppend)
	if w.hook != nil && len(frame) > 1 {
		// With a crash hook armed, split the write so CrashMidAppend can
		// land a genuinely torn record on disk.
		half := len(frame) / 2
		if _, err := w.f.Write(frame[:half]); err != nil {
			return 0, w.fail(err)
		}
		w.fire(CrashMidAppend)
		if _, err := w.f.Write(frame[half:]); err != nil {
			return 0, w.fail(err)
		}
	} else if _, err := w.f.Write(frame); err != nil {
		return 0, w.fail(err)
	}
	w.seq = rec.Seq
	w.written = rec.Seq
	w.appends.Inc()
	if w.tracker != nil {
		// Extended under mu, so the fingerprint chain order IS the log
		// order. Streaming may race the group fsync — followers holding a
		// record the primary has not yet synced only adds durability.
		w.tracker.extend(rec.Seq, rec.Kind, frame, obs)
	}
	if !w.groupCommit {
		w.pending++
		if w.pending >= w.syncEvery {
			if err := w.f.Sync(); err != nil {
				return 0, w.fail(err)
			}
			w.fsyncs.Inc()
			w.pending = 0
		}
	}
	w.fire(CrashPostAppend)
	return rec.Seq, nil
}

// syncTo makes sequence seq durable, coalescing with concurrent appends:
// the first caller into syncMu fsyncs everything written so far (the
// group's leader, one fsync for the whole batch); later callers find
// their sequence already under the synced watermark and return without
// an fsync of their own.
func (w *wal) syncTo(seq uint64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced >= seq {
		return nil
	}
	w.mu.Lock()
	target := w.written
	f := w.f
	failed := w.failed
	w.mu.Unlock()
	if failed != nil {
		return failed
	}
	if f == nil {
		return ErrWALClosed
	}
	if err := f.Sync(); err != nil {
		w.poison(err)
		return fmt.Errorf("authd: WAL fsync: %w", err)
	}
	w.fsyncs.Inc()
	w.synced = target
	return nil
}

// fail records a sticky append failure.
func (w *wal) fail(err error) error {
	w.failed = fmt.Errorf("%w: %v", ErrWALClosed, err)
	return fmt.Errorf("authd: WAL append: %w", err)
}

// poison marks the log failed from outside (a mutator applied state it
// could not finish recording). Idempotent; keeps the first cause.
func (w *wal) poison(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed == nil {
		w.failed = fmt.Errorf("%w: %v", ErrWALClosed, err)
	}
}

// lastSeq returns the last assigned sequence number.
func (w *wal) lastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// truncate discards the on-disk log after a snapshot has durably captured
// everything up to (and including) the current sequence. The in-memory
// sequence counter keeps counting — record numbering is global, not
// per-file — so replay can tell exactly which records a snapshot already
// covers.
func (w *wal) truncate() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return ErrWALClosed
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("authd: truncate WAL: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("authd: sync WAL: %w", err)
	}
	w.fsyncs.Inc()
	w.pending = 0
	// Everything up to the current sequence is durable via the snapshot
	// that triggered this truncate.
	w.synced = w.seq
	return nil
}

// close flushes and closes the log. Called at the end of a graceful
// drain, after every in-flight request has been answered.
func (w *wal) close() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	syncErr := w.f.Sync()
	if syncErr == nil {
		w.fsyncs.Inc()
	}
	closeErr := w.f.Close()
	w.f = nil
	if w.failed == nil {
		w.failed = ErrWALClosed
	}
	if syncErr != nil {
		return fmt.Errorf("authd: close WAL: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("authd: close WAL: %w", closeErr)
	}
	return nil
}

// abandon releases the file descriptor without taking mu — the crash
// harness calls it on a server it just "killed" mid-append, where the
// panicked goroutine still notionally holds the lock. The server object
// is discarded immediately after; nothing else touches it.
func (w *wal) abandon() {
	if w.f != nil {
		_ = w.f.Close()
	}
}
