package authd

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Built-in load generator: drives a mixed provision/join/revoke workload
// against a live server from concurrent workers and reports throughput
// plus latency quantiles — the repo's first service-level benchmark.
// Each worker owns its Client (own jitter RNG, own connections via the
// shared transport) and draws operations from the configured mix with a
// deterministic per-worker stream, so a run is reproducible in everything
// but wall-clock timing.

// LoadConfig configures RunLoad.
type LoadConfig struct {
	// Target is the server's base URL.
	Target string
	// Targets, when set, lists every replica's base URL: workers use the
	// client's failover (rotate on transport error/5xx, follow 421
	// redirects to the primary), and an operation that exhausts every
	// replica is counted as Unavailable — a distinct outcome from an
	// error, because under a replica-kill harness it is the expected
	// signal, not a workload bug.
	Targets []string
	// Workers is the number of concurrent clients (>= 1).
	Workers int
	// Requests is the total operation count across all workers (>= 1).
	Requests int
	// MixProvision/MixJoin/MixRevoke weight the operation mix; they need
	// not sum to anything in particular. All zero means 70/10/20.
	MixProvision, MixJoin, MixRevoke int
	// Batch is the slot count per provision request (0 = 1).
	Batch int
	// Seed derives the per-worker operation streams.
	Seed int64
	// Timeout bounds one operation including retries (0 = 30 s).
	Timeout time.Duration
}

// OpStats aggregates one operation type's outcomes.
type OpStats struct {
	Count       int           `json:"count"`
	Errors      int           `json:"errors"`
	Exhausted   int           `json:"exhausted,omitempty"`
	Unavailable int           `json:"unavailable,omitempty"`
	P50         time.Duration `json:"p50_ns"`
	P99         time.Duration `json:"p99_ns"`
	MaxLatency  time.Duration `json:"max_ns"`
}

// LoadReport is the aggregated result of one load run.
type LoadReport struct {
	Ops        int                `json:"ops"`
	Errors     int                `json:"errors"`
	// Unavailable counts operations that exhausted every replica
	// (ErrUnavailable) — expected while a kill/partition harness has the
	// primary down, so they are not folded into Errors.
	Unavailable int           `json:"unavailable,omitempty"`
	Duration    time.Duration `json:"duration_ns"`
	Throughput float64            `json:"ops_per_sec"`
	P50        time.Duration      `json:"p50_ns"`
	P99        time.Duration      `json:"p99_ns"`
	PerOp      map[string]OpStats `json:"per_op"`
	// FinalEpoch and Revoked snapshot the server state after the run.
	FinalEpoch int `json:"final_epoch"`
	Revoked    int `json:"revoked"`
}

type sample struct {
	op      string
	latency time.Duration
	err     error
}

// RunLoad executes the workload and aggregates a report. A provision
// call that finds the deployment exhausted counts as an Exhausted
// outcome, not an error — under a saturating run that is the expected
// steady state, and the worker keeps going with the rest of its mix.
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadReport, error) {
	if cfg.Target == "" && len(cfg.Targets) == 0 {
		return LoadReport{}, fmt.Errorf("authd: loadgen needs a target URL")
	}
	if cfg.Workers < 1 {
		return LoadReport{}, fmt.Errorf("authd: loadgen Workers %d must be >= 1", cfg.Workers)
	}
	if cfg.Requests < 1 {
		return LoadReport{}, fmt.Errorf("authd: loadgen Requests %d must be >= 1", cfg.Requests)
	}
	if cfg.MixProvision < 0 || cfg.MixJoin < 0 || cfg.MixRevoke < 0 {
		return LoadReport{}, fmt.Errorf("authd: loadgen mix weights must be >= 0")
	}
	if cfg.MixProvision+cfg.MixJoin+cfg.MixRevoke == 0 {
		cfg.MixProvision, cfg.MixJoin, cfg.MixRevoke = 70, 10, 20
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}

	// The revoke stream needs the pool size to draw valid code IDs.
	probe := &Client{Base: cfg.Target, Endpoints: cfg.Targets, ClientID: "loadgen-probe"}
	info, err := probe.Epoch(ctx)
	if err != nil {
		return LoadReport{}, fmt.Errorf("authd: loadgen probe: %w", err)
	}
	if info.PoolSize < 1 {
		return LoadReport{}, fmt.Errorf("authd: loadgen probe: pool size %d", info.PoolSize)
	}

	total := cfg.MixProvision + cfg.MixJoin + cfg.MixRevoke
	samples := make([]sample, cfg.Requests)
	next := make(chan int, cfg.Workers)
	go func() {
		defer close(next)
		for i := 0; i < cfg.Requests; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	start := time.Now() //jrsnd:allow wallclock loadgen measures real throughput of a live HTTP server; wall time is the measurement, not simulation state
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)*1_000_003))
			cl := &Client{
				Base:      cfg.Target,
				Endpoints: cfg.Targets,
				ClientID:  fmt.Sprintf("loadgen-%d", worker),
				Rand:      rand.New(rand.NewSource(cfg.Seed ^ int64(worker))),
			}
			for idx := range next {
				samples[idx] = runOp(ctx, cl, rng, cfg, total, info.PoolSize)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start) //jrsnd:allow wallclock loadgen measures real throughput of a live HTTP server; wall time is the measurement, not simulation state
	if err := ctx.Err(); err != nil {
		return LoadReport{}, err
	}

	report := aggregate(samples, elapsed)
	if final, err := probe.Epoch(ctx); err == nil {
		report.FinalEpoch = final.Epoch
		report.Revoked = final.Revoked
	}
	return report, nil
}

// runOp draws one operation from the mix and executes it.
func runOp(ctx context.Context, cl *Client, rng *rand.Rand, cfg LoadConfig, total, poolSize int) sample {
	opCtx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	pick := rng.Intn(total)
	begin := time.Now() //jrsnd:allow wallclock per-request latency sample against a live HTTP server; wall time is the measurement, not simulation state
	switch {
	case pick < cfg.MixProvision:
		_, err := cl.Provision(opCtx, cfg.Batch, "loadgen")
		return sample{op: "provision", latency: time.Since(begin), err: err} //jrsnd:allow wallclock per-request latency sample against a live HTTP server; wall time is the measurement, not simulation state
	case pick < cfg.MixProvision+cfg.MixJoin:
		_, err := cl.Join(opCtx, "loadgen")
		return sample{op: "join", latency: time.Since(begin), err: err} //jrsnd:allow wallclock per-request latency sample against a live HTTP server; wall time is the measurement, not simulation state
	default:
		_, err := cl.Revoke(opCtx, int32(rng.Intn(poolSize)))
		return sample{op: "revoke", latency: time.Since(begin), err: err} //jrsnd:allow wallclock per-request latency sample against a live HTTP server; wall time is the measurement, not simulation state
	}
}

// aggregate folds the samples into the report.
func aggregate(samples []sample, elapsed time.Duration) LoadReport {
	report := LoadReport{
		Ops:      len(samples),
		Duration: elapsed,
		PerOp:    map[string]OpStats{},
	}
	perOp := map[string][]time.Duration{}
	var all []time.Duration
	for _, s := range samples {
		if s.op == "" { // run cancelled before this slot was drawn
			report.Ops--
			continue
		}
		st := report.PerOp[s.op]
		st.Count++
		switch {
		case s.err == nil:
		case errors.Is(s.err, ErrExhausted):
			st.Exhausted++
		case errors.Is(s.err, ErrUnavailable):
			st.Unavailable++
			report.Unavailable++
		default:
			st.Errors++
			report.Errors++
		}
		if s.err == nil || errors.Is(s.err, ErrExhausted) {
			perOp[s.op] = append(perOp[s.op], s.latency)
			all = append(all, s.latency)
			if s.latency > st.MaxLatency {
				st.MaxLatency = s.latency
			}
		}
		report.PerOp[s.op] = st
	}
	if elapsed > 0 {
		report.Throughput = float64(report.Ops) / elapsed.Seconds()
	}
	report.P50, report.P99 = percentile(all, 0.50), percentile(all, 0.99)
	for op, lats := range perOp {
		st := report.PerOp[op]
		st.P50, st.P99 = percentile(lats, 0.50), percentile(lats, 0.99)
		report.PerOp[op] = st
	}
	return report
}

// percentile returns the q-quantile (nearest-rank) of the samples.
func percentile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Format renders the report for humans.
func (r LoadReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d ops in %v (%.0f ops/s), %d errors",
		r.Ops, r.Duration.Round(time.Millisecond), r.Throughput, r.Errors)
	if r.Unavailable > 0 {
		fmt.Fprintf(&b, ", %d unavailable", r.Unavailable)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "latency: p50 %v  p99 %v\n",
		r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond))
	ops := make([]string, 0, len(r.PerOp))
	for op := range r.PerOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		st := r.PerOp[op]
		fmt.Fprintf(&b, "  %-9s %6d ops  p50 %-10v p99 %-10v max %-10v errors %d",
			op, st.Count, st.P50.Round(time.Microsecond), st.P99.Round(time.Microsecond),
			st.MaxLatency.Round(time.Microsecond), st.Errors)
		if st.Exhausted > 0 {
			fmt.Fprintf(&b, " exhausted %d", st.Exhausted)
		}
		if st.Unavailable > 0 {
			fmt.Fprintf(&b, " unavailable %d", st.Unavailable)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "server: epoch %d, %d codes revoked\n", r.FinalEpoch, r.Revoked)
	return b.String()
}
