package authd

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestClientReusesConnections is the keep-alive regression test: a Client
// without an explicit HTTP client rides the shared package transport and
// must reuse its TCP connection across sequential requests instead of
// re-dialing per call (the failure mode of building a transport per
// request, which understated every loadgen number).
func TestClientReusesConnections(t *testing.T) {
	srv, err := New(Config{Params: testParams(64, 4, 4), Seed: 5, Rate: -1})
	if err != nil {
		t.Fatal(err)
	}
	var newConns atomic.Int64
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Config.ConnState = func(_ net.Conn, st http.ConnState) {
		if st == http.StateNew {
			newConns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	cl := &Client{Base: ts.URL, ClientID: "conn-reuse", MaxAttempts: 1}
	ctx := context.Background()
	const ops = 40
	for i := 0; i < ops; i++ {
		switch i % 3 {
		case 0:
			if _, err := cl.Provision(ctx, 1, "reuse"); err != nil {
				t.Fatal(err)
			}
		case 1:
			if _, err := cl.Epoch(ctx); err != nil {
				t.Fatal(err)
			}
		default:
			if _, err := cl.Revoke(ctx, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Sequential requests over one warm keep-alive connection: allow a
	// little slack for scheduler-raced idle returns, but 40 requests must
	// not open anywhere near 40 sockets.
	if n := newConns.Load(); n > 4 {
		t.Fatalf("%d ops opened %d TCP connections; keep-alive reuse is broken", ops, n)
	}
}
