package authd

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/codepool"
)

// Recovery semantics over real directories: clean restarts, torn tails,
// snapshot+WAL convergence, identity checks, and the concurrent
// mutations-racing-a-snapshot cut (run under -race in tier1).

func durableParams() analysis.Params {
	p := analysis.Defaults()
	p.N, p.M, p.L, p.Gamma, p.Q = 64, 8, 4, 2, 0
	return p
}

func durableServer(t testing.TB, dir string, d Durability) *Server {
	t.Helper()
	d.Dir = dir
	s, err := New(Config{Params: durableParams(), Seed: 7, Rate: -1, Durable: d})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mutate drives a deterministic mix directly against the mutation paths
// and returns the number of acknowledged mutations.
func mutate(t testing.TB, s *Server, provisions, joins, revokes int) {
	t.Helper()
	for i := 0; i < provisions; i++ {
		if _, _, err := s.provision(2, "prov"); err != nil && !errors.Is(err, ErrExhausted) {
			t.Fatal(err)
		}
	}
	for i := 0; i < joins; i++ {
		if _, _, _, err := s.join("late"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < revokes; i++ {
		if _, err := s.revoke(codepool.CodeID(i % 5)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDurableRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, Durability{SnapshotEvery: -1})
	mutate(t, s, 6, 9, 12)
	want := s.stateFingerprint()
	if err := s.wal.close(); err != nil {
		t.Fatal(err)
	}

	s2 := durableServer(t, dir, Durability{SnapshotEvery: -1})
	defer func() { _ = s2.wal.close() }()
	if got := s2.stateFingerprint(); got != want {
		t.Fatalf("recovered state differs:\n--- want\n%s--- got\n%s", want, got)
	}
	if s2.m.walReplayed.Value() == 0 {
		t.Fatal("no records replayed")
	}
	// The recovered server keeps serving: the next join continues the
	// deterministic admission sequence without colliding.
	if _, _, _, err := s2.join("after-restart"); err != nil {
		t.Fatal(err)
	}
}

func TestDurableRestartAfterSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, Durability{SnapshotEvery: -1})
	mutate(t, s, 4, 6, 8)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Mutations after the snapshot land in the (now truncated) WAL.
	mutate(t, s, 2, 3, 4)
	want := s.stateFingerprint()
	if err := s.wal.close(); err != nil {
		t.Fatal(err)
	}

	fi, err := os.Stat(filepath.Join(dir, snapFileName))
	if err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("empty snapshot")
	}

	s2 := durableServer(t, dir, Durability{SnapshotEvery: -1})
	defer func() { _ = s2.wal.close() }()
	if got := s2.stateFingerprint(); got != want {
		t.Fatalf("snapshot+WAL recovery differs:\n--- want\n%s--- got\n%s", want, got)
	}
}

func TestTornTailTruncatedOnBoot(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, Durability{SnapshotEvery: -1})
	mutate(t, s, 3, 2, 5)
	want := s.stateFingerprint()
	if err := s.wal.close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn append: half a valid record's bytes at the tail.
	frame, err := appendWALRecord(nil, walRecord{Seq: 999, Kind: walRevoke, Code: 3, At: 1})
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := durableServer(t, dir, Durability{SnapshotEvery: -1})
	defer func() { _ = s2.wal.close() }()
	if got := s2.stateFingerprint(); got != want {
		t.Fatalf("torn-tail recovery differs:\n--- want\n%s--- got\n%s", want, got)
	}
	if s2.m.walTornTails.Value() != 1 {
		t.Fatalf("torn truncations %d, want 1", s2.m.walTornTails.Value())
	}
}

func TestMiddleCorruptionRefusedOnBoot(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, Durability{SnapshotEvery: -1})
	mutate(t, s, 3, 2, 5)
	if err := s.wal.close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walFileName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[walHeaderLen+2] ^= 0xFF // damage the first record's body
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{Params: durableParams(), Seed: 7, Rate: -1, Durable: Durability{Dir: dir}})
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("boot on middle-corrupted log: %v, want ErrWALCorrupt", err)
	}
}

func TestIdentityMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, Durability{SnapshotEvery: -1})
	if err := s.wal.close(); err != nil {
		t.Fatal(err)
	}
	_, err := New(Config{Params: durableParams(), Seed: 8, Rate: -1, Durable: Durability{Dir: dir}})
	if err == nil || !strings.Contains(err.Error(), "different authority") {
		t.Fatalf("boot with different seed: %v, want identity refusal", err)
	}
}

func TestStaleSnapshotTmpRemoved(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, snapTmpName)
	if err := os.WriteFile(tmp, []byte("half a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := durableServer(t, dir, Durability{SnapshotEvery: -1})
	defer func() { _ = s.wal.close() }()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale snapshot tmp survived boot: %v", err)
	}
}

func TestAutoSnapshotCadence(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, Durability{SnapshotEvery: 5})
	defer func() { _ = s.wal.close() }()
	// noteMutation is the handlers' post-acknowledgment tick; call it the
	// way they do.
	for i := 0; i < 12; i++ {
		if _, err := s.revoke(codepool.CodeID(1)); err != nil {
			t.Fatal(err)
		}
		s.noteMutation()
	}
	if s.m.snapshots.Value() < 2 {
		t.Fatalf("snapshots %d after 12 mutations at cadence 5, want >= 2", s.m.snapshots.Value())
	}
	if _, err := os.Stat(filepath.Join(dir, snapFileName)); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
}

// TestConcurrentMutationsRacingSnapshot is the -race satellite: joins,
// provisions, and revokes hammer the server while snapshots fire
// concurrently. The snapshot must be a consistent cut across the registry
// shards and the revocation table, and a restart from snapshot+WAL must
// converge to exactly the live state.
func TestConcurrentMutationsRacingSnapshot(t *testing.T) {
	dir := t.TempDir()
	p := analysis.Defaults()
	p.N, p.M, p.L, p.Gamma, p.Q = 256, 8, 4, 2, 0
	s, err := New(Config{Params: p, Seed: 11, Rate: -1, Durable: Durability{Dir: dir, SnapshotEvery: -1}})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch (w + i) % 3 {
				case 0:
					if _, _, err := s.provision(1, "race"); err != nil && !errors.Is(err, ErrExhausted) {
						t.Error(err)
						return
					}
				case 1:
					if _, _, _, err := s.join("race"); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, err := s.revoke(codepool.CodeID(i % 7)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := s.Snapshot(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	want := s.stateFingerprint()
	if err := s.wal.close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Params: p, Seed: 11, Rate: -1, Durable: Durability{Dir: dir, SnapshotEvery: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.wal.close() }()
	if got := s2.stateFingerprint(); got != want {
		t.Fatalf("replay after racing snapshots diverged:\n--- live\n%s--- recovered\n%s", want, got)
	}
}

func TestShutdownClosesWAL(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, Durability{SnapshotEvery: -1})
	mutate(t, s, 1, 1, 1)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Drained means the log is flushed and closed: further mutations are
	// refused rather than silently unlogged.
	if _, _, _, err := s.join("after-drain"); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("join after Shutdown: %v, want ErrWALClosed", err)
	}
}
