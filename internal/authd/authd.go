// Package authd is the networked code-provisioning authority of the
// paper's system model (§V-A, §V-D) grown into a production-shaped
// service. The single MANET authority that used to live only as
// in-process library code (internal/codepool + internal/ibc) here serves
// its three duties over HTTP:
//
//   - POST /v1/provision — deployment-time code assignment: hand out the
//     pre-distributed code sets of the next unclaimed deployment slots.
//   - POST /v1/join — late join per §V-A: admit a new node from the
//     pre-provisioned virtual-node slots, running further distribution
//     rounds (a batch expansion, which advances the epoch) when those are
//     exhausted.
//   - POST /v1/revoke — invalid-code reports routed through
//     codepool.Revoker, preserving its exactly-one-revocation guarantee.
//
// plus GET /v1/epoch (distribution-epoch counter and slot accounting),
// GET /v1/node (sharded assignment lookup), GET /healthz, and
// GET /metrics (Prometheus text via internal/metrics).
//
// The service is built for concurrency the way the rest of the repo is
// built for determinism: mutable per-node state (assignment records,
// per-client rate-limit buckets) is sharded with per-shard locking so
// provisioning scales across cores; the codepool itself sits behind a
// single RWMutex because §V-A joins mutate the shared pool, while the
// deployment-slot cursor is a lock-free atomic. Request decoding is
// strictly bounded in the style of internal/wire — size caps derived
// from analysis.Params, a typed error taxonomy, no allocation driven by
// hostile lengths — and every handler increments a registered metrics
// counter. Shutdown is graceful: the listener closes, in-flight requests
// drain, and a deadline bounds the wait.
package authd

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/codepool"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Service-level error taxonomy, on top of the decode taxonomy in codec.go.
var (
	// ErrExhausted: every deployment slot has been provisioned; late
	// arrivals must use /v1/join.
	ErrExhausted = errors.New("authd: deployment slots exhausted")
	// ErrRateLimited: the per-client token bucket refused the request.
	ErrRateLimited = errors.New("authd: rate limited")
	// ErrNotFound: the requested node has no assignment record.
	ErrNotFound = errors.New("authd: unknown node")
)

// Config configures a Server. Params and Seed are required; everything
// else has a production default.
type Config struct {
	// Params sizes the code pool (N deployment slots, M codes per node,
	// L sharers, Gamma revocation threshold) and derives the request
	// decode caps.
	Params analysis.Params
	// Seed drives the deterministic pool construction and the join-time
	// batch expansions.
	Seed int64
	// Shards is the shard count for the assignment registry and the
	// rate limiter. 0 means 2×GOMAXPROCS rounded up to a power of two.
	Shards int
	// Rate and Burst configure the per-client token bucket (requests per
	// second of sustained rate, bucket depth). Rate 0 selects the
	// default (64 req/s, burst 128); a negative Rate disables limiting.
	Rate  float64
	Burst int
	// Metrics receives the service instruments; nil creates a private
	// registry (GET /metrics always works).
	Metrics *metrics.Registry
	// Limits bounds request decoding; the zero value derives caps from
	// Params via LimitsFromParams.
	Limits Limits
	// Trace, when set, receives one span per handled request
	// ("authd.<route>", timestamped in seconds since server start), so the
	// service's request handling joins the same causal-span model the
	// protocol engine uses.
	Trace trace.Sink
	// EnableProfiling mounts net/http/pprof under /debug/pprof/ and folds
	// Go runtime gauges (goroutines, heap, GC pauses) into /metrics at
	// scrape time. Off by default: profiling endpoints are diagnostic
	// surface and ReadMemStats stops the world.
	EnableProfiling bool
	// Durable enables the write-ahead log + snapshot layer (wal.go,
	// snapshot.go, recover.go): every mutation is logged before it is
	// acknowledged and New replays the directory's history on boot. The
	// zero value keeps the server fully in-memory.
	Durable Durability
	// Follower starts the server in the follower role: mutating routes
	// answer 421 (ErrNotPrimary, with an X-JRSND-Primary hint) and state
	// changes arrive only through applyReplicated. Reads serve normally.
	// Usually managed by a Follower (follower.go) rather than set
	// directly. Requires Durable.
	Follower bool
	// Replication sets the primary's acknowledgment policy (replicate.go).
	Replication ReplicationConfig

	// now is the wall clock, injectable for rate-limiter tests.
	now func() time.Time
}

// Server is the authority service. Create with New, attach to a listener
// with Start (or mount Handler yourself), stop with Shutdown.
type Server struct {
	cfg Config
	lim Limits

	// poolMu guards pool: provision reads code sets under RLock; joins
	// (which mutate the shared pool and may run a batch expansion) take
	// the write lock together with joinRng.
	poolMu  sync.RWMutex
	pool    *codepool.Pool
	joinRng *rand.Rand

	rev *codepool.Revoker

	reg *registry // sharded node-ID → assignment records
	rl  *limiter  // sharded per-client token buckets

	// nextSlot is the deployment-slot cursor: atomic claim, so two
	// concurrent provisions can never hand out overlapping slot ranges.
	nextSlot atomic.Int64

	m      *serverMetrics
	mux    *http.ServeMux
	tracer *trace.Tracer             // nil when cfg.Trace is nil
	rc     *metrics.RuntimeCollector // nil unless cfg.EnableProfiling
	start  time.Time                 // span-timestamp epoch

	// Durability (nil/zero when Config.Durable.Dir is empty). Lock order
	// is poolMu before wal.mu: every mutator appends while holding at
	// least poolMu's read side, so Snapshot's write lock is a consistent
	// cut of memory *and* log.
	wal        *wal
	dataDir    string
	crashHook  CrashHook     // crash-fault injection; nil in production
	snapMu     sync.Mutex    // serializes Snapshot
	snapSeq    atomic.Uint64 // last WAL sequence the durable snapshot covers
	snapEvery  int           // auto-snapshot cadence in mutations; <=0 off
	mutations  atomic.Int64  // acknowledged mutations since the last snapshot
	lastSnapAt atomic.Int64  // unix ns of the last durable snapshot (boot time if none)

	// Replication (replicate.go). repl is non-nil exactly when the server
	// is durable; it carries the fingerprint chain, the streamable record
	// buffer, and follower acknowledgment watermarks.
	repl         *replTracker
	followerRole atomic.Bool  // true while in the follower role
	primaryHint  atomic.Value // string: upstream primary URL (follower role)
	replLag      atomic.Int64 // last observed records behind the primary
	promoteHook  func()       // set by Follower: stop the pull loop before promotion
	pauseHook    func(bool)   // set by Follower: pause/resume the pull loop

	httpSrv  *http.Server
	inflight sync.WaitGroup

	// hookEntered, when set (tests only), is called after a mutating
	// handler has been admitted but before it touches state — the drain
	// test uses it to park requests in flight across a Shutdown call.
	hookEntered func(route string)
}

// New builds the pool, registry, limiter, and instruments, and wires the
// HTTP routes. The pool construction is deterministic in (Params, Seed).
func New(cfg Config) (*Server, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("authd: %w", err)
	}
	if cfg.Limits == (Limits{}) {
		cfg.Limits = LimitsFromParams(cfg.Params)
	}
	if err := cfg.Limits.Validate(); err != nil {
		return nil, err
	}
	if cfg.Shards == 0 {
		cfg.Shards = nextPow2(2 * runtime.GOMAXPROCS(0))
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("authd: Shards %d must be >= 1", cfg.Shards)
	}
	if cfg.Rate == 0 {
		cfg.Rate, cfg.Burst = 64, 128
	}
	if cfg.Rate > 0 && cfg.Burst < 1 {
		cfg.Burst = int(cfg.Rate)
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	if cfg.now == nil {
		cfg.now = time.Now //jrsnd:allow wallclock default clock for the live network service; tests inject cfg.now and the protocol engine never reaches this path
	}

	poolRng := rand.New(rand.NewSource(cfg.Seed))
	pool, err := codepool.New(codepool.Config{
		N: cfg.Params.N, M: cfg.Params.M, L: cfg.Params.L, Rand: poolRng,
	})
	if err != nil {
		return nil, fmt.Errorf("authd: %w", err)
	}
	rev, err := codepool.NewRevoker(cfg.Params.Gamma)
	if err != nil {
		return nil, fmt.Errorf("authd: %w", err)
	}

	s := &Server{
		cfg:     cfg,
		lim:     cfg.Limits,
		pool:    pool,
		joinRng: rand.New(rand.NewSource(cfg.Seed + 1)),
		rev:     rev,
		reg:     newRegistry(cfg.Shards),
		m:       newServerMetrics(cfg.Metrics),
		tracer:  trace.NewTracer(cfg.Trace),
		start:   cfg.now(),
	}
	if cfg.EnableProfiling {
		s.rc = metrics.NewRuntimeCollector(cfg.Metrics)
	}
	if cfg.Rate > 0 {
		s.rl = newLimiter(cfg.Shards, cfg.Rate, cfg.Burst, cfg.now)
	}
	if cfg.Follower && cfg.Durable.Dir == "" {
		return nil, fmt.Errorf("authd: the follower role requires a durable data directory")
	}
	if cfg.Durable.Dir != "" {
		if err := s.openDurable(cfg.Durable); err != nil {
			return nil, err
		}
	}
	if cfg.Follower {
		s.followerRole.Store(true)
		s.m.roleFollower.Set(1)
	} else {
		s.m.rolePrimary.Set(1)
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Handler returns the service's HTTP handler, for mounting under a
// caller-owned http.Server or an httptest server.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves in a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("authd: listen: %w", err)
	}
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown drains the service gracefully: the listener closes, in-flight
// requests run to completion (both the HTTP server's connection tracking
// and the handler-level WaitGroup are awaited), the WAL is fsynced and
// closed, and ctx bounds the wait. After Shutdown a durable server
// refuses further mutations (ErrWALClosed) — reopen the directory with
// New to resume.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if s.wal != nil {
		if werr := s.wal.close(); err == nil {
			err = werr
		}
	}
	return err
}

// Epoch returns the current distribution epoch: the number of §V-A batch
// expansions run so far (epoch 0 is the pre-deployment distribution).
func (s *Server) Epoch() int {
	s.poolMu.RLock()
	defer s.poolMu.RUnlock()
	return s.pool.Expansions()
}

// provision claims up to count deployment slots and records their
// assignments, returning the WAL sequence of the logged claim (0 when
// in-memory). The slot cursor is an atomic add, so concurrent calls get
// disjoint ranges without touching a lock; only the per-slot record
// insert takes (sharded) locks. On a durable server the claimed range is
// appended to the WAL before the call returns — the acknowledgment
// implies the batch will survive a crash — still under poolMu's read
// side, so a snapshot can never slice between the registry insert and the
// log record.
func (s *Server) provision(count int, tag string) ([]Assignment, uint64, error) {
	n := int64(s.cfg.Params.N)
	start := s.nextSlot.Add(int64(count)) - int64(count)
	if start >= n {
		return nil, 0, ErrExhausted
	}
	end := start + int64(count)
	if end > n {
		end = n
	}
	out := make([]Assignment, 0, end-start)
	now := s.cfg.now()
	s.poolMu.RLock()
	defer s.poolMu.RUnlock()
	for node := start; node < end; node++ {
		codes := s.pool.Codes(int(node))
		if err := s.reg.insert(int(node), record{Codes: codes, Tag: tag, Via: "provision", At: now}); err != nil {
			s.poison(err)
			return nil, 0, err
		}
		out = append(out, Assignment{Node: int(node), Codes: codes})
		s.m.provisionedNodes.Inc()
	}
	var seq uint64
	if s.wal != nil {
		// The observation digest folds only this record's own facts
		// (range + code sets): concurrent provisions land in the WAL in an
		// order poolMu's read side does not fix, so the digest must not
		// depend on its neighbors. The pool is immutable under RLock, so
		// the codes are exactly what was acknowledged.
		obs := obsProvision(int(start), int(end-start), s.pool.Codes)
		var err error
		seq, err = s.wal.append(walRecord{
			Kind: walProvision, Start: int(start), Count: int(end - start),
			Tag: tag, At: now.UnixNano(),
		}, obs)
		if err != nil {
			return nil, 0, err
		}
	}
	return out, seq, nil
}

// join admits one late node per §V-A, reporting whether the admission
// forced a batch expansion (and therefore advanced the epoch). Pool
// mutation, registry insert, and WAL append all happen under the write
// lock: the logged join order IS the joinRng consumption order, which is
// what makes replay reconstruct the pool bit for bit.
func (s *Server) join(tag string) (Assignment, bool, uint64, error) {
	now := s.cfg.now()
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	before := s.pool.Expansions()
	node, err := s.pool.Join(s.joinRng)
	if err != nil {
		return Assignment{}, false, 0, fmt.Errorf("authd: %w", err)
	}
	expanded := s.pool.Expansions() > before
	codes := s.pool.Codes(node)
	if err := s.reg.insert(node, record{Codes: codes, Tag: tag, Via: "join", At: now}); err != nil {
		s.poison(err)
		return Assignment{}, false, 0, err
	}
	var seq uint64
	if s.wal != nil {
		// Joins hold the write lock, so their digest may fold the epoch
		// they produced — no other mutation can interleave.
		obs := obsJoin(node, expanded, s.pool.Expansions(), codes)
		seq, err = s.wal.append(walRecord{
			Kind: walJoin, Node: node, Expanded: expanded, Tag: tag, At: now.UnixNano(),
		}, obs)
		if err != nil {
			return Assignment{}, false, 0, err
		}
	}
	s.m.joins.Inc()
	if expanded {
		s.m.expansions.Inc()
	}
	return Assignment{Node: node, Codes: codes}, expanded, seq, nil
}

// revoke routes one invalid-code report through the Revoker. The
// exactly-one-revocation guarantee is the Revoker's: of any set of
// concurrent reports for a code, exactly one observes RevokedNow — and it
// survives restarts, because the report counters are commutative and the
// γ-crossing is a deterministic function of the replayed count. poolMu's
// read side is held across report+append so a snapshot's cut always
// contains a report if and only if the log (prefix) does.
func (s *Server) revoke(code codepool.CodeID) (RevokeResult, error) {
	s.poolMu.RLock()
	defer s.poolMu.RUnlock()
	poolSize := s.pool.S()
	if int(code) < 0 || int(code) >= poolSize {
		return RevokeResult{}, fmt.Errorf("%w: code %d outside pool [0, %d)", ErrField, code, poolSize)
	}
	now := s.rev.ReportInvalid(code)
	var seq uint64
	if s.wal != nil {
		// The digest folds only the reported code: report counters are
		// commutative, and concurrent revokes under the read lock may log
		// in either order while producing the same final state.
		var err error
		seq, err = s.wal.append(walRecord{Kind: walRevoke, Code: int32(code), At: s.cfg.now().UnixNano()}, obsRevoke(int32(code)))
		if err != nil {
			return RevokeResult{}, err
		}
	}
	s.m.revokeReports.Inc()
	if now {
		s.m.revokedCodes.Inc()
	}
	return RevokeResult{
		Code:       int32(code),
		Count:      s.rev.Count(code),
		Revoked:    s.rev.Revoked(code),
		RevokedNow: now,
		Seq:        seq,
	}, nil
}

// poison marks the durable layer failed after a memory/log divergence
// (state applied but unloggable): the server stops acknowledging
// mutations rather than let memory drift ahead of what a restart could
// reconstruct. No-op when not durable.
func (s *Server) poison(err error) {
	if s.wal != nil {
		s.wal.poison(err)
	}
}

// epochInfo snapshots the distribution-state counters for GET /v1/epoch.
func (s *Server) epochInfo() EpochInfo {
	s.poolMu.RLock()
	defer s.poolMu.RUnlock()
	provisioned := s.nextSlot.Load()
	if n := int64(s.cfg.Params.N); provisioned > n {
		provisioned = n
	}
	return EpochInfo{
		Epoch:       s.pool.Expansions(),
		VacantSlots: s.pool.VacantSlots(),
		PoolSize:    s.pool.S(),
		Provisioned: int(provisioned),
		Joined:      s.pool.N() - s.cfg.Params.N,
		Revoked:     s.rev.RevokedCodes(),
	}
}

func nextPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}
