package authd

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/metrics"
)

// Service-level micro-benches: one full handler pass (decode → sharded
// state → encode) without network, so the numbers isolate the service
// from the kernel's loopback stack. The loadgen (`jrsnd-authority
// -loadgen`, BENCH_authd.json) measures the same paths over real HTTP.

func benchServer(b *testing.B, n int) *Server {
	b.Helper()
	if n < 16 {
		n = 16
	}
	p := analysis.Defaults()
	p.N, p.M, p.L, p.Gamma, p.Q = n, 4, 8, 5, 0
	srv, err := New(Config{Params: p, Seed: 1, Rate: -1})
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

func BenchmarkProvision(b *testing.B) {
	// The pool is sized from b.N so the deployment never exhausts
	// mid-measurement; construction stays outside the timer.
	srv := benchServer(b, b.N+1)
	h := srv.Handler()
	body := `{"count":1}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/provision", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

func BenchmarkProvisionParallel(b *testing.B) {
	srv := benchServer(b, b.N+1)
	h := srv.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest(http.MethodPost, "/v1/provision", strings.NewReader(`{"count":1}`))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d", w.Code)
			}
		}
	})
}

func BenchmarkRevoke(b *testing.B) {
	srv := benchServer(b, 4096)
	h := srv.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/revoke", strings.NewReader(`{"code":7}`))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

// BenchmarkWALAppend measures the durability hot path: encode one
// mutation record, write it, fsync (the default every-append policy, so
// the number is the real cost an acknowledged mutation pays). Gated by
// jrsnd-benchgate against BENCH_authd_go.json.
func BenchmarkWALAppend(b *testing.B) {
	reg := metrics.New()
	w, err := openWAL(filepath.Join(b.TempDir(), "wal.log"), 0, 1, nil, nil,
		reg.Counter("bench_appends", "b"), reg.Counter("bench_fsyncs", "b"))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = w.close() }()
	rec := walRecord{Kind: walJoin, Node: 42, Expanded: false, Tag: "bench", At: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.append(rec, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendGroupCommit measures the same hot path under
// concurrent appenders, where the group-commit path lets one fsync cover
// every record written while the previous fsync was in flight — the
// mutation-throughput win of this PR's WAL change. Gated by
// jrsnd-benchgate against BENCH_authd_go.json.
func BenchmarkWALAppendGroupCommit(b *testing.B) {
	reg := metrics.New()
	w, err := openWAL(filepath.Join(b.TempDir(), "wal.log"), 0, 1, nil, nil,
		reg.Counter("bench_gc_appends", "b"), reg.Counter("bench_gc_fsyncs", "b"))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = w.close() }()
	rec := walRecord{Kind: walJoin, Node: 42, Expanded: false, Tag: "bench", At: 1}
	// Eight appenders per proc: coalescing needs concurrent writers even on
	// a single-CPU box, and fsync blocks in a syscall, so waiting appenders
	// still get scheduled and pile onto the leader's sync group.
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := w.append(rec, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDecodeProvisionRequest(b *testing.B) {
	lim := LimitsFromParams(analysis.Defaults())
	body := []byte(`{"count":32,"tag":"bench"}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeProvisionRequest(body, lim); err != nil {
			b.Fatal(err)
		}
	}
}
