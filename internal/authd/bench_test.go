package authd

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Service-level micro-benches: one full handler pass (decode → sharded
// state → encode) without network, so the numbers isolate the service
// from the kernel's loopback stack. The loadgen (`jrsnd-authority
// -loadgen`, BENCH_authd.json) measures the same paths over real HTTP.

func benchServer(b *testing.B, n int) *Server {
	b.Helper()
	if n < 16 {
		n = 16
	}
	p := analysis.Defaults()
	p.N, p.M, p.L, p.Gamma, p.Q = n, 4, 8, 5, 0
	srv, err := New(Config{Params: p, Seed: 1, Rate: -1})
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

func BenchmarkProvision(b *testing.B) {
	// The pool is sized from b.N so the deployment never exhausts
	// mid-measurement; construction stays outside the timer.
	srv := benchServer(b, b.N+1)
	h := srv.Handler()
	body := `{"count":1}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/provision", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

func BenchmarkProvisionParallel(b *testing.B) {
	srv := benchServer(b, b.N+1)
	h := srv.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest(http.MethodPost, "/v1/provision", strings.NewReader(`{"count":1}`))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d", w.Code)
			}
		}
	})
}

func BenchmarkRevoke(b *testing.B) {
	srv := benchServer(b, 4096)
	h := srv.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/revoke", strings.NewReader(`{"code":7}`))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

func BenchmarkDecodeProvisionRequest(b *testing.B) {
	lim := LimitsFromParams(analysis.Defaults())
	body := []byte(`{"count":32,"tag":"bench"}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeProvisionRequest(body, lim); err != nil {
			b.Fatal(err)
		}
	}
}
