package authd

import "repro/internal/metrics"

// serverMetrics resolves the service instruments once at construction
// (the repo's handles-not-lookups rule); every handler path increments
// its counters with a single atomic op.
type serverMetrics struct {
	requests map[string]*metrics.Counter // per route
	errors   map[string]*metrics.Counter // per route
	latency  map[string]*metrics.Histogram

	provisionedNodes *metrics.Counter
	joins            *metrics.Counter
	expansions       *metrics.Counter
	revokeReports    *metrics.Counter
	revokedCodes     *metrics.Counter
	ratelimited      *metrics.Counter
	decodeErrors     *metrics.Counter
	exhausted        *metrics.Counter
	inflight         *metrics.Gauge
	epoch            *metrics.Gauge

	// Durability instruments (satellite of the WAL layer). Registered
	// unconditionally so the exposition is stable; they stay zero on an
	// in-memory server.
	walAppends     *metrics.Counter
	walFsyncs      *metrics.Counter
	walReplayed    *metrics.Counter
	walTornTails   *metrics.Counter
	snapshots      *metrics.Counter
	snapshotErrors *metrics.Counter
	snapshotAge    *metrics.Gauge

	// Replication instruments (replicate.go / follower.go). Registered
	// unconditionally, like the durability set, so the exposition is
	// stable across roles.
	replLagRecords   *metrics.Gauge   // follower: records behind the primary at last fetch
	rolePrimary      *metrics.Gauge   // 1 when serving as primary
	roleFollower     *metrics.Gauge   // 1 when serving as follower
	catchupSnapshots *metrics.Counter // follower: bootstraps via snapshot transfer
	divergencePanics *metrics.Counter // replicated records whose fingerprint did not match
	replStreamed     *metrics.Counter // primary: records streamed to followers
	replApplied      *metrics.Counter // follower: records applied from the stream
}

// metricRoutes is every route that gets per-route request instruments.
var metricRoutes = []string{"provision", "join", "revoke", "epoch", "node", "healthz", "metrics",
	"replicate", "replsnap", "replication", "promote", "replpause"}

func newServerMetrics(reg *metrics.Registry) *serverMetrics {
	m := &serverMetrics{
		requests: map[string]*metrics.Counter{},
		errors:   map[string]*metrics.Counter{},
		latency:  map[string]*metrics.Histogram{},
	}
	// 100 µs .. ~3.3 s, parameter-independent so snapshots merge.
	bounds := metrics.ExponentialBounds(1e-4, 2, 16)
	for _, route := range metricRoutes {
		m.requests[route] = reg.Counter(
			`authd_requests_total{route="`+route+`"}`, "requests served per route")
		m.errors[route] = reg.Counter(
			`authd_errors_total{route="`+route+`"}`, "requests refused per route")
		m.latency[route] = reg.Histogram(
			`authd_request_seconds{route="`+route+`"}`, "request handling latency (s)", bounds)
	}
	m.provisionedNodes = reg.Counter("authd_provisioned_nodes_total", "deployment slots handed out")
	m.joins = reg.Counter("authd_joins_total", "late joins admitted (§V-A)")
	m.expansions = reg.Counter("authd_expansions_total", "batch expansions run (epoch advances)")
	m.revokeReports = reg.Counter("authd_revoke_reports_total", "invalid-code reports received (§V-D)")
	m.revokedCodes = reg.Counter("authd_revoked_codes_total", "codes that crossed the γ threshold")
	m.ratelimited = reg.Counter("authd_ratelimited_total", "requests refused by the per-client token bucket")
	m.decodeErrors = reg.Counter("authd_decode_errors_total", "request bodies rejected by the bounded decoder")
	m.exhausted = reg.Counter("authd_exhausted_total", "provisions refused because deployment slots ran out")
	m.inflight = reg.Gauge("authd_inflight_requests", "requests currently being handled")
	m.epoch = reg.Gauge("authd_epoch", "current distribution epoch (batch expansions run)")
	m.walAppends = reg.Counter("jrsnd_authd_wal_appends_total", "mutation records appended to the write-ahead log")
	m.walFsyncs = reg.Counter("jrsnd_authd_wal_fsyncs_total", "fsyncs issued on the write-ahead log")
	m.walReplayed = reg.Counter("jrsnd_authd_wal_replayed_records_total", "WAL records applied during startup recovery")
	m.walTornTails = reg.Counter("jrsnd_authd_wal_torn_truncations_total", "torn WAL tails truncated during recovery")
	m.snapshots = reg.Counter("jrsnd_authd_snapshots_total", "durable snapshots written")
	m.snapshotErrors = reg.Counter("jrsnd_authd_snapshot_errors_total", "snapshot attempts that failed")
	m.snapshotAge = reg.Gauge("jrsnd_authd_snapshot_age_seconds", "seconds since the last durable snapshot (updated at scrape)")
	m.replLagRecords = reg.Gauge("jrsnd_authd_replication_lag_records", "records this follower was behind its primary at the last fetch")
	m.rolePrimary = reg.Gauge(`jrsnd_authd_role{role="primary"}`, "1 when this server is the primary")
	m.roleFollower = reg.Gauge(`jrsnd_authd_role{role="follower"}`, "1 when this server is a follower")
	m.catchupSnapshots = reg.Counter("jrsnd_authd_catchup_snapshots_total", "follower bootstraps served from a snapshot transfer")
	m.divergencePanics = reg.Counter("jrsnd_authd_divergence_panics_total", "replicated records rejected for a state-fingerprint mismatch")
	m.replStreamed = reg.Counter("jrsnd_authd_replication_streamed_records_total", "WAL records streamed to followers")
	m.replApplied = reg.Counter("jrsnd_authd_replication_applied_records_total", "replicated records applied through the recovery path")
	return m
}
