package authd

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/codepool"
)

// Sharded assignment registry: mutable per-node state lives in S shards,
// each behind its own mutex, so concurrent provisions and joins on
// different nodes never contend. Node IDs are dense integers, so the
// shard function is a simple mask (Shards is rounded to a power of two
// by New when defaulted).

// record is one node's assignment as the authority remembers it.
type record struct {
	Codes []codepool.CodeID
	Tag   string
	Via   string // "provision" or "join"
	At    time.Time
}

type regShard struct {
	mu    sync.RWMutex
	nodes map[int]record
}

type registry struct {
	shards []regShard
}

func newRegistry(shards int) *registry {
	r := &registry{shards: make([]regShard, shards)} //jrsnd:allow boundedalloc shards is operator config validated by New (Shards >= 1), never a wire-decoded count
	for i := range r.shards {
		r.shards[i].nodes = make(map[int]record)
	}
	return r
}

func (r *registry) shard(node int) *regShard {
	return &r.shards[node%len(r.shards)]
}

// insert records node's assignment exactly once. A second insert for the
// same node is the double-assignment bug the concurrency suite hunts for,
// surfaced as an error rather than silently overwritten.
func (r *registry) insert(node int, rec record) error {
	sh := r.shard(node)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.nodes[node]; ok {
		return fmt.Errorf("authd: node %d assigned twice", node)
	}
	sh.nodes[node] = rec
	return nil
}

// get returns node's assignment record.
func (r *registry) get(node int) (record, bool) {
	if node < 0 {
		return record{}, false
	}
	sh := r.shard(node)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.nodes[node]
	return rec, ok
}

// regEntry pairs a node ID with its record for dumps.
type regEntry struct {
	Node int
	Rec  record
}

// dump copies every record, sorted by node ID — the canonical order the
// durability snapshot encodes. Shards are locked one at a time; callers
// needing a consistent cut across shards (the snapshot path) hold the
// server's poolMu write lock, which every mutator reads.
func (r *registry) dump() []regEntry {
	out := make([]regEntry, 0, r.count()) //jrsnd:allow boundedalloc sized by our own shard maps (every entry passed the decode limits on insert), not by untrusted wire input
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for node, rec := range sh.nodes {
			out = append(out, regEntry{Node: node, Rec: rec})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// count sums the per-shard record counts.
func (r *registry) count() int {
	total := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		total += len(sh.nodes)
		sh.mu.RUnlock()
	}
	return total
}
