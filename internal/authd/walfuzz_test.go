package authd

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

// FuzzReplayWAL feeds arbitrary bytes — seeded with real logs and their
// truncations — through the full boot path: scan, torn-tail truncation,
// replay, registry rebuild. Properties: never panic; a directory New
// accepts recovers to an internally consistent state (every registered
// node's codes match the pool — no double assignment is possible because
// replay goes through registry.insert); and recovery is deterministic (a
// second boot of the same directory fingerprints identically).
func FuzzReplayWAL(f *testing.F) {
	params := analysis.Defaults()
	params.N, params.M, params.L, params.Gamma, params.Q = 64, 8, 4, 2, 0

	// Seed corpus: a real log from a live server, so the fuzzer starts
	// from bytes with valid structure to mutate.
	seedDir := f.TempDir()
	s, err := New(Config{Params: params, Seed: 7, Rate: -1, Durable: Durability{Dir: seedDir, SnapshotEvery: -1}})
	if err != nil {
		f.Fatal(err)
	}
	mutate(f, s, 4, 6, 9)
	if err := s.wal.close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(seedDir, walFileName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid, uint16(0))
	f.Add(valid, uint16(1))
	f.Add(valid, uint16(walHeaderLen))
	f.Add(valid, uint16(len(valid)/2))
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{walVersion, byte(walRevoke), 0, 0, 0, 12}, uint16(0))

	f.Fuzz(func(t *testing.T, data []byte, cut uint16) {
		if int(cut) < len(data) {
			data = data[:len(data)-int(cut)]
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFileName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		boot := func() (*Server, error) {
			return New(Config{Params: params, Seed: 7, Rate: -1, Durable: Durability{Dir: dir, SnapshotEvery: -1}})
		}
		s, err := boot()
		if err != nil {
			return // rejecting a damaged log is a valid outcome
		}
		// Accepted: the recovered state must be internally consistent.
		for _, e := range s.reg.dump() {
			if e.Node < 0 || e.Node >= s.pool.N() {
				t.Fatalf("recovered node %d outside pool of %d", e.Node, s.pool.N())
			}
			want := s.pool.Codes(e.Node)
			if len(want) != len(e.Rec.Codes) {
				t.Fatalf("node %d recovered %d codes, pool says %d", e.Node, len(e.Rec.Codes), len(want))
			}
			for i := range want {
				if want[i] != e.Rec.Codes[i] {
					t.Fatalf("node %d code %d mismatch", e.Node, i)
				}
			}
		}
		fp1 := s.stateFingerprint()
		if err := s.wal.close(); err != nil {
			t.Fatal(err)
		}
		// Determinism: booting the (now torn-tail-truncated) directory
		// again must reproduce the state bit for bit.
		s2, err := boot()
		if err != nil {
			t.Fatalf("second boot of an accepted directory failed: %v", err)
		}
		defer func() { _ = s2.wal.close() }()
		if fp2 := s2.stateFingerprint(); fp2 != fp1 {
			t.Fatalf("recovery nondeterministic:\n--- first\n%s--- second\n%s", fp1, fp2)
		}
	})
}
