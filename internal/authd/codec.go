package authd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"unicode/utf8"

	"repro/internal/analysis"
)

// Bounded request decoding in the style of internal/wire: every request
// body is capped before it is read, every variable-length field is capped
// before it is kept, and every failure maps into a three-error taxonomy
// so handlers (and the fuzz target) can classify hostile inputs without
// string matching. The bodies are JSON for curl-ability, but the decoder
// is strict: unknown fields, trailing data, wrong types, and out-of-domain
// values are all rejected.

// Typed decode-error taxonomy.
var (
	// ErrTooLarge: the request body exceeds Limits.MaxBody.
	ErrTooLarge = errors.New("authd: request body exceeds limit")
	// ErrSyntax: the body is not a single well-formed JSON object.
	ErrSyntax = errors.New("authd: malformed request body")
	// ErrField: an unknown field, a wrong type, or a value outside its
	// domain (count out of range, tag too long, negative code, …).
	ErrField = errors.New("authd: field out of domain")
)

// Request kinds, for the generic DecodeRequest entry point the fuzz
// target drives.
const (
	ReqProvision = iota + 1
	ReqJoin
	ReqRevoke
	numReqKinds = ReqRevoke
)

// Limits bounds every variable-length part of a request the decoder will
// hold on to. A request declaring anything larger is rejected before the
// service state is touched.
type Limits struct {
	// MaxBody caps the request body in bytes.
	MaxBody int
	// MaxBatch caps the Count of one provision request.
	MaxBatch int
	// MaxTag caps the client-supplied tag in bytes.
	MaxTag int
}

// Validate rejects unusable limit sets.
func (l Limits) Validate() error {
	switch {
	case l.MaxBody < 16:
		return fmt.Errorf("authd: MaxBody %d too small", l.MaxBody)
	case l.MaxBatch < 1:
		return fmt.Errorf("authd: MaxBatch %d must be >= 1", l.MaxBatch)
	case l.MaxTag < 0:
		return fmt.Errorf("authd: MaxTag %d must be >= 0", l.MaxTag)
	}
	return nil
}

// LimitsFromParams derives the caps from the Table I parameter set: one
// provision request may claim at most a quarter of the deployment (so a
// single hostile request cannot monopolize the slot space), tags are
// bounded like a node-ID-sized label, and the body cap is the worst-case
// honest request under those caps plus slack.
func LimitsFromParams(p analysis.Params) Limits {
	l := Limits{MaxTag: 128}
	l.MaxBatch = p.N / 4
	if l.MaxBatch < 16 {
		l.MaxBatch = 16
	}
	if l.MaxBatch > 4096 {
		l.MaxBatch = 4096
	}
	// {"count":<int>,"tag":"…"} plus escaping headroom for the tag.
	l.MaxBody = 64 + 6*l.MaxTag
	return l
}

// ProvisionRequest asks for the next Count unclaimed deployment slots.
// An empty body is a valid request for one slot.
type ProvisionRequest struct {
	// Count is the number of slots to claim, in [1, MaxBatch]. Zero (the
	// empty-body default) means 1.
	Count int `json:"count,omitempty"`
	// Tag is an optional client label stored with the assignment.
	Tag string `json:"tag,omitempty"`
}

// JoinRequest admits one late-joining node (§V-A).
type JoinRequest struct {
	Tag string `json:"tag,omitempty"`
}

// RevokeRequest reports one invalid neighbor-discovery request received
// under Code (§V-D).
type RevokeRequest struct {
	Code int32 `json:"code"`
	// Reporter is an optional label of the reporting node.
	Reporter string `json:"reporter,omitempty"`
}

// decodeStrict parses data as exactly one JSON value into dst, rejecting
// unknown fields and trailing input. Empty input is allowed (dst keeps
// its zero value) so `curl -X POST` without a body works.
func decodeStrict(data []byte, lim Limits, dst any) error {
	if len(data) > lim.MaxBody {
		return fmt.Errorf("%w: %d bytes > MaxBody %d", ErrTooLarge, len(data), lim.MaxBody)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var typeErr *json.UnmarshalTypeError
		if errors.As(err, &typeErr) {
			return fmt.Errorf("%w: field %q: %v", ErrField, typeErr.Field, err)
		}
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			return fmt.Errorf("%w: truncated JSON", ErrSyntax)
		}
		var synErr *json.SyntaxError
		if errors.As(err, &synErr) {
			return fmt.Errorf("%w: %v", ErrSyntax, err)
		}
		// json.Decoder reports unknown fields as a bare errors.New.
		return fmt.Errorf("%w: %v", ErrField, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after request", ErrSyntax)
	}
	return nil
}

func checkTag(tag string, lim Limits, what string) error {
	if len(tag) > lim.MaxTag {
		return fmt.Errorf("%w: %s %d bytes > MaxTag %d", ErrField, what, len(tag), lim.MaxTag)
	}
	if !utf8.ValidString(tag) {
		return fmt.Errorf("%w: %s is not valid UTF-8", ErrField, what)
	}
	return nil
}

// DecodeProvisionRequest parses and bounds one provision body.
func DecodeProvisionRequest(data []byte, lim Limits) (ProvisionRequest, error) {
	var req ProvisionRequest
	if err := decodeStrict(data, lim, &req); err != nil {
		return ProvisionRequest{}, err
	}
	if req.Count == 0 {
		req.Count = 1
	}
	if req.Count < 1 || req.Count > lim.MaxBatch {
		return ProvisionRequest{}, fmt.Errorf("%w: count %d outside [1, %d]", ErrField, req.Count, lim.MaxBatch)
	}
	if err := checkTag(req.Tag, lim, "tag"); err != nil {
		return ProvisionRequest{}, err
	}
	return req, nil
}

// DecodeJoinRequest parses and bounds one join body.
func DecodeJoinRequest(data []byte, lim Limits) (JoinRequest, error) {
	var req JoinRequest
	if err := decodeStrict(data, lim, &req); err != nil {
		return JoinRequest{}, err
	}
	if err := checkTag(req.Tag, lim, "tag"); err != nil {
		return JoinRequest{}, err
	}
	return req, nil
}

// DecodeRevokeRequest parses and bounds one revoke body. The code must be
// non-negative; the handler additionally checks it against the pool size.
func DecodeRevokeRequest(data []byte, lim Limits) (RevokeRequest, error) {
	var req RevokeRequest
	if err := decodeStrict(data, lim, &req); err != nil {
		return RevokeRequest{}, err
	}
	if req.Code < 0 {
		return RevokeRequest{}, fmt.Errorf("%w: code %d must be >= 0", ErrField, req.Code)
	}
	if err := checkTag(req.Reporter, lim, "reporter"); err != nil {
		return RevokeRequest{}, err
	}
	return req, nil
}

// DecodeRequest dispatches on the request kind and returns the decoded
// payload. Unknown kinds are ErrField. This is the single entry point the
// fuzz target drives.
func DecodeRequest(kind int, data []byte, lim Limits) (any, error) {
	if err := lim.Validate(); err != nil {
		return nil, err
	}
	switch kind {
	case ReqProvision:
		return DecodeProvisionRequest(data, lim)
	case ReqJoin:
		return DecodeJoinRequest(data, lim)
	case ReqRevoke:
		return DecodeRevokeRequest(data, lim)
	default:
		return nil, fmt.Errorf("%w: request kind %d", ErrField, kind)
	}
}

// EncodeRequest renders a decoded request back to its canonical JSON
// form. Decode(Encode(Decode(x))) == Decode(x) for every accepted x — the
// round-trip property the fuzz target checks.
func EncodeRequest(payload any) ([]byte, error) {
	switch payload.(type) {
	case ProvisionRequest, JoinRequest, RevokeRequest:
		return json.Marshal(payload)
	default:
		return nil, fmt.Errorf("%w: payload type %T", ErrField, payload)
	}
}
