package authd

// Follower manages one follower replica: it owns the follower-role Server,
// runs the replication pull loop against the current primary, bootstraps
// (and re-bootstraps) from snapshot transfers, and implements the
// promotion and pause hooks the HTTP surface exposes.
//
// The loop is deliberately dumb: fetch records after the local sequence,
// apply each through the recovery path (applyReplicated), repeat. All the
// hard cases are signaled by the primary through the fetch status —
// "you're too far behind, take a snapshot" and "your history is not my
// history, wipe and re-bootstrap" — and by the fingerprint check inside
// applyReplicated, which is the one case that is NOT self-healing: a
// record the primary acknowledged producing different state here means
// the deterministic state machine is not deterministic, and the follower
// stops loudly (Fatal) rather than papering over it with a re-bootstrap.
//
// Re-bootstrap replaces the whole Server: the handler the HTTP listener
// sees is an atomic indirection, swapped to a 503 responder while the old
// server drains, the data directory is reset to the fetched snapshot, and
// a fresh Server boots from it — the same code path crash recovery uses.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// FollowerConfig configures StartFollower.
type FollowerConfig struct {
	// Server is the base configuration for the managed replica. Follower
	// is forced true; Durable.Dir is required; Metrics is defaulted to a
	// fresh registry so instruments survive re-bootstraps.
	Server Config
	// Primaries are the candidate upstream base URLs (every replica in the
	// group, typically). The loop follows whichever reports the primary
	// role; on repeated fetch failures it re-probes the list.
	Primaries []string
	// ID is this follower's stable identity for the primary's
	// acknowledgment watermarks. Required.
	ID string
	// PollInterval paces the loop after an error or an empty poll;
	// 0 means 25 ms.
	PollInterval time.Duration
	// WaitMS is the server-side long-poll window per fetch; 0 means 400.
	WaitMS int
	// BatchMax is the record cap per fetch; 0 means 512.
	BatchMax int
	// HTTP overrides the transport; nil uses the shared pooled client.
	HTTP *http.Client
	// Logf receives diagnostic lines; nil discards them.
	Logf func(format string, args ...any)
}

// Follower is the running manager. Obtain with StartFollower.
type Follower struct {
	cfg   FollowerConfig
	httpc *http.Client

	srvMu sync.Mutex
	srv   *Server

	handler atomic.Value // handlerBox: the live server's mux or a 503 responder
	httpSrv *http.Server

	paused  atomic.Bool
	stopped atomic.Bool
	stopCh  chan struct{}
	done    chan struct{}

	primMu  sync.Mutex
	primary string

	fatalCh chan error
}

// StartFollower builds the follower server (bootstrapping from whatever
// the data directory holds) and starts the pull loop. The returned
// Follower is not yet listening; call Start.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("authd: follower requires an ID")
	}
	if len(cfg.Primaries) == 0 {
		return nil, fmt.Errorf("authd: follower requires at least one primary candidate")
	}
	cfg.Server.Follower = true
	if cfg.Server.Metrics == nil {
		// Pinned here (not left to New's per-call default) so the same
		// instruments survive re-bootstrap's server replacement.
		cfg.Server.Metrics = metrics.New()
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 25 * time.Millisecond
	}
	if cfg.WaitMS <= 0 {
		cfg.WaitMS = 400
	}
	if cfg.BatchMax <= 0 || cfg.BatchMax > replMaxBatch {
		cfg.BatchMax = 512
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	f := &Follower{
		cfg:     cfg,
		httpc:   cfg.HTTP,
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
		fatalCh: make(chan error, 1),
		primary: cfg.Primaries[0],
	}
	if f.httpc == nil {
		f.httpc = sharedHTTPClient
	}
	srv, err := New(cfg.Server)
	if err != nil {
		return nil, err
	}
	f.installServer(srv)
	go f.loop()
	return f, nil
}

// Start listens on addr and serves the managed replica. The handler
// indirection is what lets re-bootstrap swap servers under a live
// listener.
func (f *Follower) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("authd: follower listen: %w", err)
	}
	f.httpSrv = &http.Server{
		Handler:           http.HandlerFunc(f.serveHTTP),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() { _ = f.httpSrv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// handlerBox keeps atomic.Value's concrete type constant across stores of
// different handler implementations (mux vs 503 responder).
type handlerBox struct{ h http.Handler }

func (f *Follower) serveHTTP(w http.ResponseWriter, r *http.Request) {
	f.handler.Load().(handlerBox).h.ServeHTTP(w, r)
}

// Server returns the currently live replica server (it changes across
// re-bootstraps).
func (f *Follower) Server() *Server {
	f.srvMu.Lock()
	defer f.srvMu.Unlock()
	return f.srv
}

// Fatal delivers the error that stopped the loop permanently — today only
// a fingerprint divergence at apply time, the one fault re-bootstrap must
// not hide.
func (f *Follower) Fatal() <-chan error { return f.fatalCh }

// Primary reports the upstream the loop is currently following.
func (f *Follower) Primary() string {
	f.primMu.Lock()
	defer f.primMu.Unlock()
	return f.primary
}

// Close stops the loop, the listener, and the managed server.
func (f *Follower) Close(ctx context.Context) error {
	f.stopLoop()
	var err error
	if f.httpSrv != nil {
		err = f.httpSrv.Shutdown(ctx)
	}
	if serr := f.Server().Shutdown(ctx); err == nil {
		err = serr
	}
	return err
}

// installServer wires the hooks and publishes the server to the listener.
func (f *Follower) installServer(srv *Server) {
	srv.promoteHook = f.stopLoop
	srv.pauseHook = f.setPaused
	f.setPrimaryOn(srv)
	f.srvMu.Lock()
	f.srv = srv
	f.srvMu.Unlock()
	f.handler.Store(handlerBox{h: srv.Handler()})
}

// stopLoop halts the pull loop and waits for it to exit; the promotion
// hook, so a promoted server can never apply another replicated record.
// Idempotent.
func (f *Follower) stopLoop() {
	if f.stopped.CompareAndSwap(false, true) {
		close(f.stopCh)
	}
	<-f.done
}

func (f *Follower) setPaused(p bool) { f.paused.Store(p) }

func (f *Follower) setPrimary(url string) {
	f.primMu.Lock()
	f.primary = url
	f.primMu.Unlock()
	f.setPrimaryOn(f.Server())
}

func (f *Follower) setPrimaryOn(srv *Server) {
	srv.setPrimaryHint(f.Primary())
}

// sleep waits d or until the loop is stopped; reports whether to continue.
func (f *Follower) sleep(d time.Duration) bool {
	t := time.NewTimer(d) //jrsnd:allow wallclock paces the live replication pull loop between fetches; never runs under the simulator
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-f.stopCh:
		return false
	}
}

// loop is the pull loop: fetch after the local sequence, apply, repeat.
func (f *Follower) loop() {
	defer close(f.done)
	transportFails := 0
	for {
		select {
		case <-f.stopCh:
			return
		default:
		}
		if f.paused.Load() {
			if !f.sleep(f.cfg.PollInterval) {
				return
			}
			continue
		}
		srv := f.Server()
		after := srv.repl.lastSeq()
		fp := srv.repl.chainFP()
		batch, err := f.fetch(f.Primary(), after, fp)
		if err != nil {
			transportFails++
			if transportFails >= 3 {
				// The primary may be dead or demoted: re-probe the
				// candidate list for whoever serves the primary role now.
				if p := f.findPrimary(); p != "" && p != f.Primary() {
					f.cfg.Logf("follower %s: switching primary to %s", f.cfg.ID, p)
					f.setPrimary(p)
					transportFails = 0
				}
			}
			if !f.sleep(f.cfg.PollInterval) {
				return
			}
			continue
		}
		transportFails = 0

		switch batch.status {
		case replOK:
			fatal := false
			for _, e := range batch.entries {
				if err := srv.applyReplicated(e.frame, e.fp); err != nil {
					if errors.Is(err, ErrReplicaDiverged) {
						// NOT self-healing: the deterministic state machine
						// produced different state from the same record. The
						// server is poisoned; stop loudly.
						f.cfg.Logf("follower %s: FATAL divergence: %v", f.cfg.ID, err)
						select {
						case f.fatalCh <- err:
						default:
						}
						fatal = true
						break
					}
					f.cfg.Logf("follower %s: apply: %v", f.cfg.ID, err)
					break
				}
				srv.noteMutation()
			}
			if fatal {
				return
			}
			lag := int64(batch.lastSeq) - int64(srv.repl.lastSeq())
			if lag < 0 {
				lag = 0
			}
			srv.replLag.Store(lag)
			srv.m.replLagRecords.Set(float64(lag))
			if len(batch.entries) == 0 {
				// The server-side long poll already waited; yield briefly so
				// a dead-idle pair doesn't spin.
				if !f.sleep(time.Millisecond) {
					return
				}
			}
		case replSnapshotNeeded, replDivergent:
			// Lagging past the primary's buffered window, or holding a
			// history the primary never produced (a stale tail from a dead
			// primary, rejoining after failover). Both re-bootstrap from the
			// primary's snapshot — safe, because the promotion gate
			// guarantees every acknowledged record is in the new primary's
			// history.
			if batch.status == replDivergent {
				f.cfg.Logf("follower %s: primary reports divergence at seq %d; re-bootstrapping", f.cfg.ID, after)
			}
			if err := f.rebootstrap(); err != nil {
				f.cfg.Logf("follower %s: re-bootstrap: %v", f.cfg.ID, err)
				if !f.sleep(f.cfg.PollInterval) {
					return
				}
			}
		}
	}
}

// fetch issues one replication poll against base.
func (f *Follower) fetch(base string, after, fp uint64) (replBatch, error) {
	url := fmt.Sprintf("%s/v1/replicate?after=%d&fp=%016x&max=%d&wait_ms=%d",
		base, after, fp, f.cfg.BatchMax, f.cfg.WaitMS)
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return replBatch{}, err
	}
	req.Header.Set("X-JRSND-Follower", f.cfg.ID)
	resp, err := f.httpc.Do(req)
	if err != nil {
		return replBatch{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, replMaxResp+1))
	if err != nil {
		return replBatch{}, err
	}
	if len(body) > replMaxResp {
		return replBatch{}, fmt.Errorf("authd: replication response exceeds %d bytes", replMaxResp)
	}
	if resp.StatusCode != http.StatusOK {
		return replBatch{}, fmt.Errorf("authd: replicate fetch: %s", resp.Status)
	}
	return decodeReplResponse(body)
}

// findPrimary probes every candidate for the primary role.
func (f *Follower) findPrimary() string {
	for _, cand := range f.cfg.Primaries {
		st, err := FetchReplicationStatus(f.httpc, cand)
		if err == nil && st.Role == "primary" {
			return cand
		}
	}
	return ""
}

// FetchReplicationStatus probes GET /v1/replication on base — the probe
// followers and harnesses use to locate the primary.
func FetchReplicationStatus(httpc *http.Client, base string) (ReplicationStatus, error) {
	var st ReplicationStatus
	if httpc == nil {
		httpc = sharedHTTPClient
	}
	resp, err := httpc.Get(base + "/v1/replication")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("authd: replication status: %s", resp.Status)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, fmt.Errorf("authd: replication status: %w", err)
	}
	return st, nil
}

// rebootstrap resets this replica to the primary's snapshot: drain the old
// server behind a 503 responder, replace the data directory's state with
// the fetched image, and boot a fresh server from it.
func (f *Follower) rebootstrap() error {
	data, err := f.fetchSnapshot(f.Primary())
	if err != nil {
		return err
	}
	st, err := decodeSnapshot(data)
	if err != nil {
		return fmt.Errorf("authd: fetched snapshot: %w", err)
	}
	p := f.cfg.Server.Params
	if st.N != p.N || st.M != p.M || st.L != p.L || st.Gamma != p.Gamma || st.Seed != f.cfg.Server.Seed {
		return fmt.Errorf("authd: fetched snapshot identity (n=%d m=%d l=%d γ=%d seed=%d) does not match this replica",
			st.N, st.M, st.L, st.Gamma, st.Seed)
	}

	f.handler.Store(handlerBox{h: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"authd: replica re-bootstrapping"}`, http.StatusServiceUnavailable)
	})})
	old := f.Server()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := old.Shutdown(ctx); err != nil {
		f.cfg.Logf("follower %s: drain before re-bootstrap: %v", f.cfg.ID, err)
	}

	dir := f.cfg.Server.Durable.Dir
	if err := os.Remove(filepath.Join(dir, walFileName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("authd: reset wal: %w", err)
	}
	tmp := filepath.Join(dir, snapTmpName)
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("authd: write fetched snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapFileName)); err != nil {
		return fmt.Errorf("authd: install fetched snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}

	srv, err := New(f.cfg.Server)
	if err != nil {
		return fmt.Errorf("authd: re-bootstrap boot: %w", err)
	}
	if got := srv.repl.lastSeq(); got != st.Seq {
		return fmt.Errorf("authd: re-bootstrapped replica at seq %d, snapshot covers %d", got, st.Seq)
	}
	f.installServer(srv)
	srv.m.catchupSnapshots.Inc()
	f.cfg.Logf("follower %s: re-bootstrapped from snapshot at seq %d", f.cfg.ID, st.Seq)
	return nil
}

// fetchSnapshot pulls the primary's snapshot image.
func (f *Follower) fetchSnapshot(base string) ([]byte, error) {
	resp, err := f.httpc.Get(base + "/v1/replicate/snapshot")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// Magic + length + CRC + payload, bounded by the decoder's own cap.
	data, err := io.ReadAll(io.LimitReader(resp.Body, snapMaxPayload+64))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("authd: snapshot fetch: %s", resp.Status)
	}
	return data, nil
}
