package authd

import (
	"strings"
	"testing"
)

// TestCrashMatrixBounded is the tier1-resident slice of the crash-fault
// harness: a few kill-restart cycles at every crash point, asserting the
// four recovery invariants (no double assignment, no lost acknowledged
// mutation, exactly-one-revocation, monotonic epoch). `make authd-crash`
// runs the exhaustive version plus the subprocess kill-restart loop.
func TestCrashMatrixBounded(t *testing.T) {
	reports, err := RunCrashMatrix(CrashConfig{
		Dir:           t.TempDir(),
		Params:        durableParams(),
		Seed:          3,
		Cycles:        3,
		OpsPerCycle:   32,
		SnapshotEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(CrashPoints) {
		t.Fatalf("%d reports for %d points", len(reports), len(CrashPoints))
	}
	crashes := 0
	for _, r := range reports {
		if !r.Passed() {
			t.Errorf("crash point %s violated invariants:\n%s", r.Point, strings.Join(r.Violations, "\n"))
		}
		if r.AckedOps == 0 {
			t.Errorf("crash point %s acknowledged no operations — the harness did no work", r.Point)
		}
		crashes += r.Crashes
	}
	if crashes == 0 {
		t.Fatal("no cycle actually crashed — the hooks never fired")
	}
}

func TestCrashMatrixValidation(t *testing.T) {
	if _, err := RunCrashMatrix(CrashConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
