package authd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/codepool"
	"repro/internal/metrics"
)

// HTTP surface. Every route runs through handle(), which tracks the
// in-flight gauge/WaitGroup (so Shutdown can drain), applies the
// per-client rate limit to mutating routes, reads the body under the
// MaxBody cap, and observes per-route latency. Handlers return
// (status, payload) or an error; errors map onto HTTP statuses through
// the typed taxonomies of codec.go and authd.go.

// Assignment is one node's provisioning result.
type Assignment struct {
	Node  int               `json:"node"`
	Codes []codepool.CodeID `json:"codes"`
}

// ProvisionResponse answers POST /v1/provision.
type ProvisionResponse struct {
	Nodes []Assignment `json:"nodes"`
	Epoch int          `json:"epoch"`
}

// JoinResponse answers POST /v1/join.
type JoinResponse struct {
	Node     int               `json:"node"`
	Codes    []codepool.CodeID `json:"codes"`
	Epoch    int               `json:"epoch"`
	Expanded bool              `json:"expanded"`
}

// RevokeResult answers POST /v1/revoke.
type RevokeResult struct {
	Code       int32 `json:"code"`
	Count      int   `json:"count"`
	Revoked    bool  `json:"revoked"`
	RevokedNow bool  `json:"revoked_now"`
}

// EpochInfo answers GET /v1/epoch.
type EpochInfo struct {
	Epoch       int `json:"epoch"`
	VacantSlots int `json:"vacant_slots"`
	PoolSize    int `json:"pool_size"`
	Provisioned int `json:"provisioned"`
	Joined      int `json:"joined"`
	Revoked     int `json:"revoked"`
}

// NodeInfo answers GET /v1/node.
type NodeInfo struct {
	Node  int               `json:"node"`
	Codes []codepool.CodeID `json:"codes"`
	Via   string            `json:"via"`
	Tag   string            `json:"tag,omitempty"`
}

// errorBody is the uniform error response.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("/v1/provision", s.handle("provision", http.MethodPost, true, s.handleProvision))
	s.mux.HandleFunc("/v1/join", s.handle("join", http.MethodPost, true, s.handleJoin))
	s.mux.HandleFunc("/v1/revoke", s.handle("revoke", http.MethodPost, true, s.handleRevoke))
	s.mux.HandleFunc("/v1/epoch", s.handle("epoch", http.MethodGet, false, s.handleEpoch))
	s.mux.HandleFunc("/v1/node", s.handle("node", http.MethodGet, false, s.handleNode))
	s.mux.HandleFunc("/healthz", s.handle("healthz", http.MethodGet, false, s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.handle("metrics", http.MethodGet, false, s.handleMetrics))
	if s.cfg.EnableProfiling {
		// Continuous-profiling surface, opt-in: the default mux is never
		// used, so the stdlib's side-effect registration does not apply and
		// the handlers are mounted explicitly.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// handlerFunc is the inner handler shape: the decoded body is handed in,
// the response payload (marshaled as JSON unless it is a rawResponse)
// comes back.
type handlerFunc func(r *http.Request, body []byte) (int, any, error)

// rawResponse bypasses JSON marshaling (the /metrics exposition).
type rawResponse struct {
	contentType string
	data        []byte
}

// clientKey identifies the caller for rate limiting: the self-declared
// X-Client-ID if present, else the remote host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) handle(route, method string, limited bool, fn handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Done()
		s.m.inflight.Add(1)
		defer s.m.inflight.Add(-1)
		start := s.cfg.now()
		s.m.requests[route].Inc()
		if s.tracer != nil {
			// One span per request, timestamped in seconds since server
			// start so the stream stays near-monotonic for JSONL sinks.
			sp := s.tracer.Start(start.Sub(s.start).Seconds(), 0, -1, -1, "authd."+route)
			defer func() {
				s.tracer.End(s.cfg.now().Sub(s.start).Seconds(), sp, -1, -1, "")
			}()
		}

		if r.Method != method {
			w.Header().Set("Allow", method)
			s.fail(w, route, http.StatusMethodNotAllowed, fmt.Errorf("authd: %s requires %s", route, method))
			return
		}
		if limited && s.rl != nil && !s.rl.allow(clientKey(r)) {
			s.m.ratelimited.Inc()
			w.Header().Set("Retry-After", "1")
			s.fail(w, route, http.StatusTooManyRequests, ErrRateLimited)
			return
		}
		// Read at most MaxBody+1 bytes: the extra byte distinguishes
		// "exactly at the cap" from "over it" without ever buffering an
		// unbounded body.
		body, err := io.ReadAll(io.LimitReader(r.Body, int64(s.lim.MaxBody)+1))
		if err != nil {
			s.fail(w, route, http.StatusBadRequest, fmt.Errorf("%w: %v", ErrSyntax, err))
			return
		}
		if len(body) > s.lim.MaxBody {
			s.m.decodeErrors.Inc()
			s.fail(w, route, http.StatusRequestEntityTooLarge, ErrTooLarge)
			return
		}
		if s.hookEntered != nil {
			s.hookEntered(route)
		}

		status, payload, err := fn(r, body)
		if err != nil {
			s.fail(w, route, statusFor(err), err)
			return
		}
		s.m.latency[route].Observe(s.cfg.now().Sub(start).Seconds())
		if raw, ok := payload.(rawResponse); ok {
			w.Header().Set("Content-Type", raw.contentType)
			w.WriteHeader(status)
			_, _ = w.Write(raw.data)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(payload)
	}
}

// statusFor maps the typed error taxonomies onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrSyntax), errors.Is(err, ErrField):
		return http.StatusBadRequest
	case errors.Is(err, ErrExhausted):
		return http.StatusConflict
	case errors.Is(err, ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) fail(w http.ResponseWriter, route string, status int, err error) {
	s.m.errors[route].Inc()
	if errors.Is(err, ErrSyntax) || errors.Is(err, ErrField) || errors.Is(err, ErrTooLarge) {
		s.m.decodeErrors.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

func (s *Server) handleProvision(_ *http.Request, body []byte) (int, any, error) {
	req, err := DecodeProvisionRequest(body, s.lim)
	if err != nil {
		return 0, nil, err
	}
	nodes, err := s.provision(req.Count, req.Tag)
	if err != nil {
		if errors.Is(err, ErrExhausted) {
			s.m.exhausted.Inc()
		}
		return 0, nil, err
	}
	s.noteMutation()
	return http.StatusOK, ProvisionResponse{Nodes: nodes, Epoch: s.Epoch()}, nil
}

func (s *Server) handleJoin(_ *http.Request, body []byte) (int, any, error) {
	req, err := DecodeJoinRequest(body, s.lim)
	if err != nil {
		return 0, nil, err
	}
	a, expanded, err := s.join(req.Tag)
	if err != nil {
		return 0, nil, err
	}
	s.noteMutation()
	epoch := s.Epoch()
	s.m.epoch.SetMax(float64(epoch))
	return http.StatusOK, JoinResponse{Node: a.Node, Codes: a.Codes, Epoch: epoch, Expanded: expanded}, nil
}

func (s *Server) handleRevoke(_ *http.Request, body []byte) (int, any, error) {
	req, err := DecodeRevokeRequest(body, s.lim)
	if err != nil {
		return 0, nil, err
	}
	res, err := s.revoke(codepool.CodeID(req.Code))
	if err != nil {
		return 0, nil, err
	}
	s.noteMutation()
	return http.StatusOK, res, nil
}

func (s *Server) handleEpoch(_ *http.Request, _ []byte) (int, any, error) {
	info := s.epochInfo()
	s.m.epoch.SetMax(float64(info.Epoch))
	return http.StatusOK, info, nil
}

func (s *Server) handleNode(r *http.Request, _ []byte) (int, any, error) {
	idStr := r.URL.Query().Get("id")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: id %q", ErrField, idStr)
	}
	rec, ok := s.reg.get(id)
	if !ok {
		return 0, nil, fmt.Errorf("%w: node %d", ErrNotFound, id)
	}
	return http.StatusOK, NodeInfo{Node: id, Codes: rec.Codes, Via: rec.Via, Tag: rec.Tag}, nil
}

func (s *Server) handleHealthz(_ *http.Request, _ []byte) (int, any, error) {
	return http.StatusOK, map[string]string{"status": "ok"}, nil
}

func (s *Server) handleMetrics(_ *http.Request, _ []byte) (int, any, error) {
	s.rc.Collect() // nil (profiling off) is a no-op
	if s.wal != nil {
		// Snapshot age is computed at scrape time so the gauge is honest
		// without a background ticker.
		age := s.cfg.now().Sub(time.Unix(0, s.lastSnapAt.Load())).Seconds()
		s.m.snapshotAge.Set(age)
	}
	var buf bytes.Buffer
	if err := metrics.WritePrometheus(&buf, s.cfg.Metrics.Snapshot()); err != nil {
		return 0, nil, err
	}
	return http.StatusOK, rawResponse{contentType: "text/plain; version=0.0.4", data: buf.Bytes()}, nil
}
