package authd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/codepool"
	"repro/internal/metrics"
)

// HTTP surface. Every route runs through handle(), which tracks the
// in-flight gauge/WaitGroup (so Shutdown can drain), applies the
// per-client rate limit to mutating routes, reads the body under the
// MaxBody cap, and observes per-route latency. Handlers return
// (status, payload) or an error; errors map onto HTTP statuses through
// the typed taxonomies of codec.go and authd.go.

// Assignment is one node's provisioning result.
type Assignment struct {
	Node  int               `json:"node"`
	Codes []codepool.CodeID `json:"codes"`
}

// ProvisionResponse answers POST /v1/provision. Seq is the WAL sequence
// of the acknowledged mutation (0 on an in-memory server); failover
// harnesses use it to reason about which replicas must hold the record.
type ProvisionResponse struct {
	Nodes []Assignment `json:"nodes"`
	Epoch int          `json:"epoch"`
	Seq   uint64       `json:"seq,omitempty"`
}

// JoinResponse answers POST /v1/join.
type JoinResponse struct {
	Node     int               `json:"node"`
	Codes    []codepool.CodeID `json:"codes"`
	Epoch    int               `json:"epoch"`
	Expanded bool              `json:"expanded"`
	Seq      uint64            `json:"seq,omitempty"`
}

// RevokeResult answers POST /v1/revoke.
type RevokeResult struct {
	Code       int32  `json:"code"`
	Count      int    `json:"count"`
	Revoked    bool   `json:"revoked"`
	RevokedNow bool   `json:"revoked_now"`
	Seq        uint64 `json:"seq,omitempty"`
}

// EpochInfo answers GET /v1/epoch.
type EpochInfo struct {
	Epoch       int `json:"epoch"`
	VacantSlots int `json:"vacant_slots"`
	PoolSize    int `json:"pool_size"`
	Provisioned int `json:"provisioned"`
	Joined      int `json:"joined"`
	Revoked     int `json:"revoked"`
}

// NodeInfo answers GET /v1/node.
type NodeInfo struct {
	Node  int               `json:"node"`
	Codes []codepool.CodeID `json:"codes"`
	Via   string            `json:"via"`
	Tag   string            `json:"tag,omitempty"`
}

// errorBody is the uniform error response.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("/v1/provision", s.handle("provision", http.MethodPost, true, s.handleProvision))
	s.mux.HandleFunc("/v1/join", s.handle("join", http.MethodPost, true, s.handleJoin))
	s.mux.HandleFunc("/v1/revoke", s.handle("revoke", http.MethodPost, true, s.handleRevoke))
	s.mux.HandleFunc("/v1/epoch", s.handle("epoch", http.MethodGet, false, s.handleEpoch))
	s.mux.HandleFunc("/v1/node", s.handle("node", http.MethodGet, false, s.handleNode))
	s.mux.HandleFunc("/healthz", s.handle("healthz", http.MethodGet, false, s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.handle("metrics", http.MethodGet, false, s.handleMetrics))
	// Replication surface (replicate.go): the record stream and snapshot
	// transfer followers pull from, the status probe clients and
	// harnesses use to find the primary, and the promotion/partition
	// controls. Unlimited: followers are infrastructure, not clients.
	s.mux.HandleFunc("/v1/replicate", s.handle("replicate", http.MethodGet, false, s.handleReplicate))
	s.mux.HandleFunc("/v1/replicate/snapshot", s.handle("replsnap", http.MethodGet, false, s.handleReplicateSnapshot))
	s.mux.HandleFunc("/v1/replication", s.handle("replication", http.MethodGet, false, s.handleReplicationStatus))
	s.mux.HandleFunc("/v1/promote", s.handle("promote", http.MethodPost, false, s.handlePromote))
	s.mux.HandleFunc("/v1/replpause", s.handle("replpause", http.MethodPost, false, s.handleReplPause))
	if s.cfg.EnableProfiling {
		// Continuous-profiling surface, opt-in: the default mux is never
		// used, so the stdlib's side-effect registration does not apply and
		// the handlers are mounted explicitly.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// handlerFunc is the inner handler shape: the decoded body is handed in,
// the response payload (marshaled as JSON unless it is a rawResponse)
// comes back.
type handlerFunc func(r *http.Request, body []byte) (int, any, error)

// rawResponse bypasses JSON marshaling (the /metrics exposition, the
// binary replication stream). header carries extra response headers.
type rawResponse struct {
	contentType string
	data        []byte
	header      map[string]string
}

// clientKey identifies the caller for rate limiting: the self-declared
// X-Client-ID if present, else the remote host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) handle(route, method string, limited bool, fn handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Done()
		s.m.inflight.Add(1)
		defer s.m.inflight.Add(-1)
		start := s.cfg.now()
		s.m.requests[route].Inc()
		if s.tracer != nil {
			// One span per request, timestamped in seconds since server
			// start so the stream stays near-monotonic for JSONL sinks.
			sp := s.tracer.Start(start.Sub(s.start).Seconds(), 0, -1, -1, "authd."+route)
			defer func() {
				s.tracer.End(s.cfg.now().Sub(s.start).Seconds(), sp, -1, -1, "")
			}()
		}

		if r.Method != method {
			w.Header().Set("Allow", method)
			s.fail(w, route, http.StatusMethodNotAllowed, fmt.Errorf("authd: %s requires %s", route, method))
			return
		}
		if limited && s.isFollower() {
			// Mutations only land on the primary: a follower's state is a
			// replica of its upstream's WAL, so accepting a mutation here
			// would fork the history. The hint header lets clients jump
			// straight to the primary instead of probing.
			if hint := s.getPrimaryHint(); hint != "" {
				w.Header().Set("X-JRSND-Primary", hint)
			}
			s.fail(w, route, http.StatusMisdirectedRequest, ErrNotPrimary)
			return
		}
		if limited && s.rl != nil && !s.rl.allow(clientKey(r)) {
			s.m.ratelimited.Inc()
			w.Header().Set("Retry-After", "1")
			s.fail(w, route, http.StatusTooManyRequests, ErrRateLimited)
			return
		}
		// Read at most MaxBody+1 bytes: the extra byte distinguishes
		// "exactly at the cap" from "over it" without ever buffering an
		// unbounded body.
		body, err := io.ReadAll(io.LimitReader(r.Body, int64(s.lim.MaxBody)+1))
		if err != nil {
			s.fail(w, route, http.StatusBadRequest, fmt.Errorf("%w: %v", ErrSyntax, err))
			return
		}
		if len(body) > s.lim.MaxBody {
			s.m.decodeErrors.Inc()
			s.fail(w, route, http.StatusRequestEntityTooLarge, ErrTooLarge)
			return
		}
		if s.hookEntered != nil {
			s.hookEntered(route)
		}

		status, payload, err := fn(r, body)
		if err != nil {
			s.fail(w, route, statusFor(err), err)
			return
		}
		s.m.latency[route].Observe(s.cfg.now().Sub(start).Seconds())
		if raw, ok := payload.(rawResponse); ok {
			w.Header().Set("Content-Type", raw.contentType)
			for k, v := range raw.header {
				w.Header().Set(k, v)
			}
			w.WriteHeader(status)
			_, _ = w.Write(raw.data)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(payload)
	}
}

// statusFor maps the typed error taxonomies onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrSyntax), errors.Is(err, ErrField):
		return http.StatusBadRequest
	case errors.Is(err, ErrExhausted):
		return http.StatusConflict
	case errors.Is(err, ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrNotPrimary):
		return http.StatusMisdirectedRequest
	case errors.Is(err, ErrSyncTimeout):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNoReplication):
		return http.StatusPreconditionFailed
	case errors.Is(err, ErrPromotionGate):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) fail(w http.ResponseWriter, route string, status int, err error) {
	s.m.errors[route].Inc()
	if errors.Is(err, ErrSyntax) || errors.Is(err, ErrField) || errors.Is(err, ErrTooLarge) {
		s.m.decodeErrors.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

func (s *Server) handleProvision(r *http.Request, body []byte) (int, any, error) {
	req, err := DecodeProvisionRequest(body, s.lim)
	if err != nil {
		return 0, nil, err
	}
	nodes, seq, err := s.provision(req.Count, req.Tag)
	if err != nil {
		if errors.Is(err, ErrExhausted) {
			s.m.exhausted.Inc()
		}
		return 0, nil, err
	}
	s.noteMutation()
	if err := s.waitReplicated(r.Context().Done(), seq); err != nil {
		return 0, nil, err
	}
	return http.StatusOK, ProvisionResponse{Nodes: nodes, Epoch: s.Epoch(), Seq: seq}, nil
}

func (s *Server) handleJoin(r *http.Request, body []byte) (int, any, error) {
	req, err := DecodeJoinRequest(body, s.lim)
	if err != nil {
		return 0, nil, err
	}
	a, expanded, seq, err := s.join(req.Tag)
	if err != nil {
		return 0, nil, err
	}
	s.noteMutation()
	if err := s.waitReplicated(r.Context().Done(), seq); err != nil {
		return 0, nil, err
	}
	epoch := s.Epoch()
	s.m.epoch.SetMax(float64(epoch))
	return http.StatusOK, JoinResponse{Node: a.Node, Codes: a.Codes, Epoch: epoch, Expanded: expanded, Seq: seq}, nil
}

func (s *Server) handleRevoke(r *http.Request, body []byte) (int, any, error) {
	req, err := DecodeRevokeRequest(body, s.lim)
	if err != nil {
		return 0, nil, err
	}
	res, err := s.revoke(codepool.CodeID(req.Code))
	if err != nil {
		return 0, nil, err
	}
	s.noteMutation()
	if err := s.waitReplicated(r.Context().Done(), res.Seq); err != nil {
		return 0, nil, err
	}
	return http.StatusOK, res, nil
}

func (s *Server) handleEpoch(_ *http.Request, _ []byte) (int, any, error) {
	info := s.epochInfo()
	s.m.epoch.SetMax(float64(info.Epoch))
	return http.StatusOK, info, nil
}

func (s *Server) handleNode(r *http.Request, _ []byte) (int, any, error) {
	idStr := r.URL.Query().Get("id")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: id %q", ErrField, idStr)
	}
	rec, ok := s.reg.get(id)
	if !ok {
		return 0, nil, fmt.Errorf("%w: node %d", ErrNotFound, id)
	}
	return http.StatusOK, NodeInfo{Node: id, Codes: rec.Codes, Via: rec.Via, Tag: rec.Tag}, nil
}

func (s *Server) handleHealthz(_ *http.Request, _ []byte) (int, any, error) {
	return http.StatusOK, map[string]string{"status": "ok"}, nil
}

func (s *Server) handleMetrics(_ *http.Request, _ []byte) (int, any, error) {
	s.rc.Collect() // nil (profiling off) is a no-op
	if s.wal != nil {
		// Snapshot age is computed at scrape time so the gauge is honest
		// without a background ticker.
		age := s.cfg.now().Sub(time.Unix(0, s.lastSnapAt.Load())).Seconds()
		s.m.snapshotAge.Set(age)
	}
	var buf bytes.Buffer
	if err := metrics.WritePrometheus(&buf, s.cfg.Metrics.Snapshot()); err != nil {
		return 0, nil, err
	}
	return http.StatusOK, rawResponse{contentType: "text/plain; version=0.0.4", data: buf.Bytes()}, nil
}

// handleReplicate is the primary side of the replication stream: a
// follower's long-polling fetch of acknowledged WAL records after a
// sequence, with the fingerprint handshake described in replicate.go.
func (s *Server) handleReplicate(r *http.Request, _ []byte) (int, any, error) {
	if s.repl == nil || s.wal == nil {
		return 0, nil, ErrNoReplication
	}
	if s.isFollower() {
		return 0, nil, fmt.Errorf("%w: followers do not stream", ErrNotPrimary)
	}
	q := r.URL.Query()
	var after uint64
	if v := q.Get("after"); v != "" {
		var err error
		if after, err = strconv.ParseUint(v, 10, 64); err != nil {
			return 0, nil, fmt.Errorf("%w: after %q", ErrField, v)
		}
	}
	callerFP := uint64(fpBasis)
	if v := q.Get("fp"); v != "" {
		var err error
		if callerFP, err = strconv.ParseUint(v, 16, 64); err != nil {
			return 0, nil, fmt.Errorf("%w: fp %q", ErrField, v)
		}
	}
	max := 512
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return 0, nil, fmt.Errorf("%w: max %q", ErrField, v)
		}
		max = n
		if max > replMaxBatch {
			max = replMaxBatch
		}
	}
	var wait time.Duration
	if v := q.Get("wait_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 0 {
			return 0, nil, fmt.Errorf("%w: wait_ms %q", ErrField, v)
		}
		wait = time.Duration(ms) * time.Millisecond
		if wait > replMaxWait {
			wait = replMaxWait
		}
	}

	// Capture the broadcast channel BEFORE the first fetch: an append
	// landing between fetch and wait closes the captured channel, so the
	// long poll can never sleep through a record.
	ch := s.repl.appendChan()
	status, ents, lastSeq, snapSeq := s.repl.fetch(after, callerFP, max)
	if status == replOK {
		// A fetch carrying after=S is the follower's durable ack of every
		// record ≤ S — recorded before any long-poll wait so MinSync
		// waiters unblock immediately.
		s.repl.recordAck(r.Header.Get("X-JRSND-Follower"), after)
	}
	if status == replOK && len(ents) == 0 && wait > 0 {
		waitAppend(ch, wait)
		status, ents, lastSeq, snapSeq = s.repl.fetch(after, callerFP, max)
	}
	if status == replOK {
		s.m.replStreamed.Add(uint64(len(ents)))
	}
	return http.StatusOK, rawResponse{
		contentType: "application/octet-stream",
		data:        encodeReplResponse(status, lastSeq, snapSeq, ents),
	}, nil
}

// handleReplicateSnapshot serves the durable snapshot image a lagging or
// divergent follower bootstraps from — the same checksummed file recovery
// boots from. If no snapshot exists yet, one is taken on demand.
func (s *Server) handleReplicateSnapshot(_ *http.Request, _ []byte) (int, any, error) {
	if s.wal == nil {
		return 0, nil, ErrNoReplication
	}
	path := filepath.Join(s.dataDir, snapFileName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if err := s.Snapshot(); err != nil {
			return 0, nil, err
		}
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return 0, nil, fmt.Errorf("authd: read snapshot for transfer: %w", err)
	}
	s.m.catchupSnapshots.Inc()
	return http.StatusOK, rawResponse{contentType: "application/octet-stream", data: data}, nil
}

func (s *Server) handleReplicationStatus(_ *http.Request, _ []byte) (int, any, error) {
	return http.StatusOK, s.replicationStatus(), nil
}

// handlePromote turns a follower into the primary, gated on it holding
// every sequence the caller knows was acknowledged. Idempotent on a
// server that is already primary.
func (s *Server) handlePromote(_ *http.Request, body []byte) (int, any, error) {
	if s.repl == nil || s.wal == nil {
		return 0, nil, ErrNoReplication
	}
	var req PromoteRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			return 0, nil, fmt.Errorf("%w: %v", ErrSyntax, err)
		}
	}
	if !s.isFollower() {
		return http.StatusOK, PromoteResponse{Role: "primary", LastSeq: s.repl.lastSeq()}, nil
	}
	if last := s.repl.lastSeq(); last < req.MinSeq {
		return 0, nil, fmt.Errorf("%w: this follower holds seq %d < required %d; promoting it would lose acknowledged mutations", ErrPromotionGate, last, req.MinSeq)
	}
	if s.promoteHook != nil {
		// Stops the pull loop synchronously: after this returns no further
		// replicated record can land, so the role flip below is clean.
		s.promoteHook()
	}
	s.BecomePrimary()
	return http.StatusOK, PromoteResponse{Role: "primary", LastSeq: s.repl.lastSeq()}, nil
}

// handleReplPause toggles a follower's pull loop — the harness's
// asymmetric partition control.
func (s *Server) handleReplPause(_ *http.Request, body []byte) (int, any, error) {
	var req PauseRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			return 0, nil, fmt.Errorf("%w: %v", ErrSyntax, err)
		}
	}
	if s.pauseHook == nil {
		return 0, nil, fmt.Errorf("%w: no replication pull loop on this server", ErrNoReplication)
	}
	s.pauseHook(req.Paused)
	return http.StatusOK, map[string]bool{"paused": req.Paused}, nil
}
