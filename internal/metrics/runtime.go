package metrics

import "runtime"

// RuntimeCollector mirrors Go runtime health — goroutine count, heap
// footprint, GC pause accumulation — into registry gauges. Collection is
// pull-based: call Collect at scrape time (e.g. at the top of a /metrics
// handler) so the snapshot reflects the moment of observation instead of
// a background sampler's cadence. A nil *RuntimeCollector is inert.
type RuntimeCollector struct {
	goroutines   *Gauge
	heapAlloc    *Gauge
	heapObjects  *Gauge
	gcCycles     *Gauge
	gcPauseTotal *Gauge
}

// NewRuntimeCollector registers the runtime instruments on reg. A nil
// registry yields a fully inert (but non-nil) collector.
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	return &RuntimeCollector{
		goroutines:   reg.Gauge("jrsnd_go_goroutines", "live goroutines at scrape time"),
		heapAlloc:    reg.Gauge("jrsnd_go_heap_alloc_bytes", "bytes of allocated heap objects"),
		heapObjects:  reg.Gauge("jrsnd_go_heap_objects", "live heap objects"),
		gcCycles:     reg.Gauge("jrsnd_go_gc_cycles_total", "completed GC cycles"),
		gcPauseTotal: reg.Gauge("jrsnd_go_gc_pause_seconds_total", "cumulative GC stop-the-world pause time"),
	}
}

// Collect samples the runtime into the registered gauges. ReadMemStats
// stops the world briefly; callers gate collection behind an opt-in
// profiling flag rather than running it per-request.
func (c *RuntimeCollector) Collect() {
	if c == nil {
		return
	}
	c.goroutines.Set(float64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.heapAlloc.Set(float64(ms.HeapAlloc))
	c.heapObjects.Set(float64(ms.HeapObjects))
	c.gcCycles.Set(float64(ms.NumGC))
	c.gcPauseTotal.Set(float64(ms.PauseTotalNs) / 1e9)
}
