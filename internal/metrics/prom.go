package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) of a snapshot, plus a parser
// for the same format so campaign tooling (cmd/jrsnd-report) can merge the
// .prom files that instrumented runs leave behind.

// splitLabels separates "name{a="b"}" into the base name and the raw label
// body (without braces); an unlabeled name yields "".
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	body := name[i+1:]
	body = strings.TrimSuffix(body, "}")
	return name[:i], body
}

// withLabel appends one label pair to a possibly-labeled metric name,
// returning the sample name for the exposition line.
func withLabel(name, key, value string) string {
	base, labels := splitLabels(name)
	pair := key + `="` + EscapeLabelValue(value) + `"`
	if labels == "" {
		return base + "{" + pair + "}"
	}
	return base + "{" + labels + "," + pair + "}"
}

// labelEscaper applies the text-exposition escapes for label values:
// backslash, double quote, and newline.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// EscapeLabelValue escapes a raw string for use inside a quoted label
// value. Instrument constructors that embed caller-controlled strings in
// labeled names (`name{key="<value>"}`) must escape them, or a quote in
// the value corrupts the whole exposition.
func EscapeLabelValue(s string) string { return labelEscaper.Replace(s) }

// unescapeLabelValue reverses EscapeLabelValue.
func unescapeLabelValue(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default: // \\ and \" unescape to the literal; others pass through
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeHeader(w io.Writer, done map[string]bool, base, typ string, help map[string]string) error {
	if done[base] {
		return nil
	}
	done[base] = true
	if h := help[base]; h != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, strings.ReplaceAll(h, "\n", " ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
	return err
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, deterministically ordered.
func WritePrometheus(w io.Writer, s Snapshot) error {
	done := map[string]bool{}
	for _, name := range sortedKeys(s.Counters) {
		if err := writeHeader(w, done, baseName(name), "counter", s.Help); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := writeHeader(w, done, baseName(name), "gauge", s.Help); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if err := writeHeader(w, done, baseName(name), "histogram", s.Help); err != nil {
			return err
		}
		suffix := func(sfx string) string {
			b, labels := splitLabels(name)
			if labels == "" {
				return b + sfx
			}
			return b + sfx + "{" + labels + "}"
		}
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			line := withLabelOnSuffix(name, "_bucket", "le", formatFloat(bound))
			if _, err := fmt.Fprintf(w, "%s %d\n", line, cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Counts)-1]
		line := withLabelOnSuffix(name, "_bucket", "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s %d\n", line, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", suffix("_sum"), formatFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", suffix("_count"), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// withLabelOnSuffix builds "base_sfx{orig-labels,key="value"}" from a
// possibly-labeled instrument name.
func withLabelOnSuffix(name, sfx, key, value string) string {
	base, labels := splitLabels(name)
	full := base + sfx
	if labels != "" {
		full += "{" + labels + "}"
	}
	return withLabel(full, key, value)
}

// parseLabels splits a raw label body (`a="b",c="d"`) into pairs, honoring
// quotes and backslash escapes; values come back unescaped.
func parseLabels(body string) ([][2]string, error) {
	var out [][2]string
	rest := body
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("metrics: malformed label body %q", body)
		}
		key := strings.TrimSpace(rest[:eq])
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("metrics: unquoted label value in %q", body)
		}
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++ // skip the escaped byte
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("metrics: unterminated label value in %q", body)
		}
		out = append(out, [2]string{key, unescapeLabelValue(rest[1:end])})
		rest = rest[end+1:]
		rest = strings.TrimPrefix(rest, ",")
	}
	return out, nil
}

// renderLabels rebuilds a label body from (unescaped) pairs.
func renderLabels(pairs [][2]string) string {
	parts := make([]string, len(pairs))
	for i, p := range pairs {
		parts[i] = p[0] + `="` + EscapeLabelValue(p[1]) + `"`
	}
	return strings.Join(parts, ",")
}

// histAccum accumulates the exposition lines of one histogram instrument.
type histAccum struct {
	bounds []float64
	cum    []uint64
	sum    float64
	count  uint64
}

// ParsePrometheus reads a text exposition previously produced by
// WritePrometheus back into a snapshot. It understands the subset of the
// format this package emits: counter, gauge, and histogram families with
// optional labels.
func ParsePrometheus(r io.Reader) (Snapshot, error) {
	s := NewSnapshot()
	types := map[string]string{}
	hists := map[string]*histAccum{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 4 && fields[1] == "HELP" {
				s.Help[fields[2]] = fields[3]
			}
			if len(fields) >= 4 && fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return Snapshot{}, fmt.Errorf("metrics: line %d: no value in %q", lineNo, line)
		}
		name, valueStr := strings.TrimSpace(line[:sp]), line[sp+1:]
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			return Snapshot{}, fmt.Errorf("metrics: line %d: bad value %q: %v", lineNo, valueStr, err)
		}
		base, labelBody := splitLabels(name)
		// Histogram component samples end in _bucket/_sum/_count and their
		// family was declared `# TYPE <fam> histogram`.
		if fam, sfx, ok := histFamily(base, types); ok {
			pairs, err := parseLabels(labelBody)
			if err != nil {
				return Snapshot{}, fmt.Errorf("metrics: line %d: %v", lineNo, err)
			}
			var le string
			kept := pairs[:0]
			for _, p := range pairs {
				if p[0] == "le" {
					le = p[1]
					continue
				}
				kept = append(kept, p)
			}
			instName := fam
			if body := renderLabels(kept); body != "" {
				instName += "{" + body + "}"
			}
			acc := hists[instName]
			if acc == nil {
				acc = &histAccum{}
				hists[instName] = acc
			}
			switch sfx {
			case "_bucket":
				if le == "+Inf" {
					acc.cum = append(acc.cum, uint64(value))
				} else {
					bound, err := strconv.ParseFloat(le, 64)
					if err != nil {
						return Snapshot{}, fmt.Errorf("metrics: line %d: bad le %q", lineNo, le)
					}
					acc.bounds = append(acc.bounds, bound)
					acc.cum = append(acc.cum, uint64(value))
				}
			case "_sum":
				acc.sum = value
			case "_count":
				acc.count = uint64(value)
			}
			continue
		}
		switch types[base] {
		case "counter":
			s.Counters[name] = uint64(value)
		default: // gauge or untyped
			s.Gauges[name] = value
		}
	}
	if err := sc.Err(); err != nil {
		return Snapshot{}, fmt.Errorf("metrics: read exposition: %w", err)
	}
	for name, acc := range hists {
		if len(acc.cum) != len(acc.bounds)+1 {
			return Snapshot{}, fmt.Errorf("metrics: histogram %q missing its +Inf bucket", name)
		}
		hs := HistogramSnapshot{
			Bounds: acc.bounds,
			Counts: make([]uint64, len(acc.cum)),
			Sum:    acc.sum,
			Count:  acc.count,
		}
		prev := uint64(0)
		for i, cum := range acc.cum {
			if cum < prev {
				return Snapshot{}, fmt.Errorf("metrics: histogram %q has non-monotonic buckets", name)
			}
			hs.Counts[i] = cum - prev
			prev = cum
		}
		s.Histograms[name] = hs
	}
	return s, nil
}

// histFamily reports whether base is a component sample (<fam>_bucket,
// <fam>_sum, <fam>_count) of a declared histogram family.
func histFamily(base string, types map[string]string) (fam, sfx string, ok bool) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(base, suffix) {
			fam = strings.TrimSuffix(base, suffix)
			if types[fam] == "histogram" {
				return fam, suffix, true
			}
		}
	}
	return "", "", false
}

// Deterministically ordered name lists, for report rendering.
func (s Snapshot) SortedCounterNames() []string   { return sortedKeys(s.Counters) }
func (s Snapshot) SortedGaugeNames() []string     { return sortedKeys(s.Gauges) }
func (s Snapshot) SortedHistogramNames() []string { return sortedKeys(s.Histograms) }
