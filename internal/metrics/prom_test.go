package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func exampleSnapshot() Snapshot {
	r := New()
	r.Counter(`jrsnd_core_tx_total{kind="HELLO"}`, "transmissions by kind").Add(120)
	r.Counter(`jrsnd_core_tx_total{kind="CONFIRM"}`, "transmissions by kind").Add(80)
	r.Counter("jrsnd_sim_events_fired_total", "events fired").Add(5000)
	r.Gauge("jrsnd_sim_queue_high_water", "max pending events").Set(37)
	h := r.Histogram("jrsnd_core_discovery_latency_seconds", "latency", []float64{0.5, 1, 2})
	h.Observe(0.3)
	h.Observe(0.7)
	h.Observe(5)
	return r.Snapshot()
}

func TestPrometheusRoundTrip(t *testing.T) {
	snap := exampleSnapshot()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, snap); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE jrsnd_core_tx_total counter",
		`jrsnd_core_tx_total{kind="HELLO"} 120`,
		"# TYPE jrsnd_sim_queue_high_water gauge",
		"# TYPE jrsnd_core_discovery_latency_seconds histogram",
		`jrsnd_core_discovery_latency_seconds_bucket{le="0.5"} 1`,
		`jrsnd_core_discovery_latency_seconds_bucket{le="1"} 2`,
		`jrsnd_core_discovery_latency_seconds_bucket{le="+Inf"} 3`,
		"jrsnd_core_discovery_latency_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	back, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if back.Counters[`jrsnd_core_tx_total{kind="HELLO"}`] != 120 {
		t.Errorf("parsed counters = %v", back.Counters)
	}
	if back.Gauges["jrsnd_sim_queue_high_water"] != 37 {
		t.Errorf("parsed gauges = %v", back.Gauges)
	}
	hs, ok := back.Histograms["jrsnd_core_discovery_latency_seconds"]
	if !ok {
		t.Fatalf("histogram not parsed; snapshot %+v", back)
	}
	if len(hs.Bounds) != 3 || hs.Bounds[2] != 2 {
		t.Errorf("parsed bounds = %v", hs.Bounds)
	}
	if want := []uint64{1, 1, 0, 1}; len(hs.Counts) != 4 ||
		hs.Counts[0] != want[0] || hs.Counts[1] != want[1] || hs.Counts[2] != want[2] || hs.Counts[3] != want[3] {
		t.Errorf("parsed buckets = %v, want %v", hs.Counts, want)
	}
	if hs.Count != 3 {
		t.Errorf("parsed count = %d", hs.Count)
	}

	// A parsed snapshot must merge cleanly with the original: doubled
	// counters, identical geometry.
	merged := NewSnapshot()
	if err := merged.Merge(snap); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(back); err != nil {
		t.Fatal(err)
	}
	if merged.Counters["jrsnd_sim_events_fired_total"] != 10000 {
		t.Errorf("merged counter = %d, want 10000", merged.Counters["jrsnd_sim_events_fired_total"])
	}
	if merged.Histograms["jrsnd_core_discovery_latency_seconds"].Count != 6 {
		t.Error("merged histogram lost observations")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	snap := exampleSnapshot()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, snap); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Counters[`jrsnd_core_tx_total{kind="CONFIRM"}`] != 80 {
		t.Errorf("JSON round trip lost counters: %v", back.Counters)
	}
	hs := back.Histograms["jrsnd_core_discovery_latency_seconds"]
	if hs.Count != 3 || len(hs.Counts) != 4 {
		t.Errorf("JSON round trip mangled histogram: %+v", hs)
	}

	// Corrupt geometry must be rejected.
	if _, err := ReadJSON(strings.NewReader(
		`{"histograms":{"h":{"bounds":[1,2],"counts":[1],"sum":0,"count":1}}}`)); err == nil {
		t.Fatal("ReadJSON accepted a histogram with missing buckets")
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	if _, err := ParsePrometheus(strings.NewReader("novalue\n")); err == nil {
		t.Error("line without a value must fail")
	}
	if _, err := ParsePrometheus(strings.NewReader("x{a=b} 1\n")); err == nil {
		// unquoted label value inside a histogram context is only checked
		// for histogram families; plain gauges take the whole name as-is.
		t.Log("unquoted label accepted on untyped sample (tolerated)")
	}
	bad := "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"
	if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
		t.Error("non-monotonic cumulative buckets must fail")
	}
	missingInf := "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n"
	if _, err := ParsePrometheus(strings.NewReader(missingInf)); err == nil {
		t.Error("histogram without +Inf bucket must fail")
	}
}
