package metrics

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// Exposition-correctness coverage for prom.go: label-value escaping,
// histogram bucket ordering, and byte-deterministic output.

func TestLabelValueEscaping(t *testing.T) {
	cases := []struct{ raw, escaped string }{
		{`plain`, `plain`},
		{`has"quote`, `has\"quote`},
		{`back\slash`, `back\\slash`},
		{"new\nline", `new\nline`},
		{`both\"`, `both\\\"`},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.raw); got != c.escaped {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.raw, got, c.escaped)
		}
		if got := unescapeLabelValue(c.escaped); got != c.raw {
			t.Errorf("unescapeLabelValue(%q) = %q, want %q", c.escaped, got, c.raw)
		}
	}
}

// TestEscapedLabelsRoundTrip: an instrument labeled with a hostile value
// (quotes, backslashes, newline) must survive write → parse intact — the
// escaping keeps one bad label from corrupting the whole exposition.
func TestEscapedLabelsRoundTrip(t *testing.T) {
	hostile := "ad\"ver\\sary\nnode"
	r := New()
	name := `jrsnd_test_events_total{src="` + EscapeLabelValue(hostile) + `"}`
	hname := `jrsnd_test_latency_seconds{src="` + EscapeLabelValue(hostile) + `"}`
	r.Counter(name, "events by source").Add(7)
	h := r.Histogram(hname, "latency by source", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(3)
	snap := r.Snapshot()

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("parse of escaped exposition failed: %v\n%s", err, buf.String())
	}
	if got.Counters[name] != 7 {
		t.Fatalf("counter lost its escaped label: got keys %v", got.SortedCounterNames())
	}
	hs, ok := got.Histograms[hname]
	if !ok {
		t.Fatalf("histogram lost its escaped label: got keys %v", got.SortedHistogramNames())
	}
	if hs.Count != 2 || hs.Sum != 3.5 {
		t.Fatalf("histogram data corrupted: %+v", hs)
	}
	// The unescaped hostile value must be recoverable from the label body.
	_, body := splitLabels(name)
	pairs, err := parseLabels(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0][1] != hostile {
		t.Fatalf("parseLabels(%q) = %v, want value %q", body, pairs, hostile)
	}
}

func TestParseLabelsRejectsMalformed(t *testing.T) {
	for _, body := range []string{`k`, `k=v`, `k="unterminated`, `k="trailing\`} {
		if _, err := parseLabels(body); err == nil {
			t.Errorf("parseLabels(%q) accepted malformed body", body)
		}
	}
}

// TestHistogramBucketOrdering: exposition buckets must come out in
// ascending le order, cumulative, with the +Inf bucket last and equal to
// the observation count — the contract scrapers depend on.
func TestHistogramBucketOrdering(t *testing.T) {
	r := New()
	h := r.Histogram("jrsnd_test_seconds", "x", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var les []string
	var counts []uint64
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "jrsnd_test_seconds_bucket") {
			continue
		}
		var le string
		var n uint64
		if _, err := fmt.Sscanf(line, `jrsnd_test_seconds_bucket{le="%s %d`, &le, &n); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		les = append(les, strings.TrimSuffix(le, `"}`))
		counts = append(counts, n)
	}
	wantLes := []string{"0.1", "1", "10", "+Inf"}
	if len(les) != len(wantLes) {
		t.Fatalf("got %d bucket lines (%v), want %v", len(les), les, wantLes)
	}
	for i := range wantLes {
		if les[i] != wantLes[i] {
			t.Fatalf("bucket order = %v, want %v (ascending, +Inf last)", les, wantLes)
		}
	}
	wantCounts := []uint64{1, 3, 4, 5}
	for i := range wantCounts {
		if counts[i] != wantCounts[i] {
			t.Fatalf("cumulative counts = %v, want %v", counts, wantCounts)
		}
	}
	if counts[len(counts)-1] != 5 {
		t.Fatalf("+Inf bucket = %d, want total observation count 5", counts[len(counts)-1])
	}
}

// TestDeterministicExposition: two writes of the same snapshot must be
// byte-identical, with families in sorted order — diffs of .prom
// artifacts must mean the data changed, not the map iteration.
func TestDeterministicExposition(t *testing.T) {
	snap := exampleSnapshot()
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("non-deterministic exposition:\n--- a ---\n%s--- b ---\n%s", a.String(), b.String())
	}
	// Sample lines must be sorted within each section.
	var counterLines []string
	for _, line := range strings.Split(a.String(), "\n") {
		if strings.HasPrefix(line, "jrsnd_core_tx_total{") || strings.HasPrefix(line, "jrsnd_sim_events_fired_total") {
			counterLines = append(counterLines, line)
		}
	}
	for i := 1; i < len(counterLines); i++ {
		if counterLines[i-1] > counterLines[i] {
			t.Fatalf("counter samples out of sorted order:\n%s", strings.Join(counterLines, "\n"))
		}
	}
}
