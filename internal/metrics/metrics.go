// Package metrics is the telemetry registry the protocol engine, the DSSS
// PHY, and the experiment harness report into: allocation-conscious
// counters, gauges, and fixed-bucket histograms, snapshotable and mergeable
// across Monte-Carlo runs, with Prometheus-style text exposition and JSON
// export.
//
// The design is handle-based: a component asks the Registry once for its
// instruments at setup time and then updates them on the hot path with a
// single atomic operation — no map lookups, no locks, no allocations per
// event. Every instrument is safe for concurrent use, and every method is a
// no-op on a nil receiver, so uninstrumented runs pay only a nil check:
//
//	reg := metrics.New()                       // or nil to disable
//	tx := reg.Counter("jrsnd_tx_total", "transmissions")
//	...
//	tx.Inc()                                   // hot path; safe when tx == nil
//
// Metric names may carry a Prometheus-style label suffix, e.g.
// "jrsnd_tx_total{kind=\"HELLO\"}"; instruments that share a base name form
// one exposition family.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. A nil *Counter is a valid
// no-op instrument.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can move in both directions. Set/Add race freely
// from multiple goroutines; SetMax keeps a high-water mark. A nil *Gauge is
// a valid no-op instrument.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (compare-and-swap loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark update used for e.g. event-queue depth.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: bucket i counts observations x
// with x <= Bounds[i] (and above the previous bound); one extra +Inf bucket
// catches the rest — Prometheus bucket semantics, which makes snapshots of
// independent Monte-Carlo runs mergeable bucket by bucket. A nil *Histogram
// is a valid no-op instrument.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last bucket is +Inf
	sum    Gauge
	count  atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	// Upper-bound binary search: first bound >= x.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if x <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(x)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// LinearBounds returns n evenly spaced bucket bounds over (0, max]:
// max/n, 2·max/n, …, max.
func LinearBounds(max float64, n int) []float64 {
	if n < 1 || max <= 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = max * float64(i+1) / float64(n)
	}
	return out
}

// ExponentialBounds returns n bounds start, start·factor, start·factor², ….
func ExponentialBounds(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry owns a namespace of instruments. A nil *Registry hands out nil
// instruments, so a component can instrument itself unconditionally and let
// the caller decide whether telemetry is on.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string // keyed by base (family) name
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		help:       map[string]string{},
	}
}

// baseName strips a "{...}" label suffix from a metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// validName rejects names that would corrupt the text exposition.
func validName(name string) error {
	base := baseName(name)
	if base == "" {
		return fmt.Errorf("metrics: empty metric name %q", name)
	}
	for _, r := range base {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' || r == ':' {
			continue
		}
		return fmt.Errorf("metrics: invalid character %q in metric name %q", r, name)
	}
	if strings.ContainsAny(name, "\n") {
		return fmt.Errorf("metrics: newline in metric name %q", name)
	}
	return nil
}

func (r *Registry) setHelp(name, help string) {
	base := baseName(name)
	if help != "" && r.help[base] == "" {
		r.help[base] = help
	}
}

// Counter returns (creating on first use) the named counter. The name may
// carry a label suffix: Counter(`tx_total{kind="HELLO"}`, …). A nil
// registry or invalid name yields a nil (no-op) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil || validName(name) != nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	r.setHelp(name, help)
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil || validName(name) != nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	r.setHelp(name, help)
	return g
}

// Histogram returns (creating on first use) the named histogram with the
// given strictly increasing, finite bucket bounds (the +Inf bucket is
// implicit). Re-registering an existing histogram returns the existing
// instrument regardless of the bounds passed. A nil registry, invalid name,
// or invalid bounds yield a nil (no-op) histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil || validName(name) != nil || len(bounds) == 0 {
		return nil
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil
		}
		if i > 0 && b <= bounds[i-1] {
			return nil
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	r.setHelp(name, help)
	return h
}

// Snapshot captures a point-in-time copy of every instrument. Safe to call
// while other goroutines keep updating the registry. Returns a zero-valued
// snapshot for a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Help:       map[string]string{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
			hs.Count += hs.Counts[i]
		}
		s.Histograms[name] = hs
	}
	for base, help := range r.help {
		s.Help[base] = help
	}
	return s
}

// sortedKeys returns the map's keys ordered for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
