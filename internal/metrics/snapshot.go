package metrics

import (
	"encoding/json"
	"fmt"
	"io"
)

// HistogramSnapshot is the frozen state of one histogram. Counts has one
// entry per bound plus a final +Inf bucket; entries are per-bucket (not
// cumulative), which makes merging a plain element-wise sum.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Quantile returns an approximate q-quantile (q in [0,1]) from the bucket
// counts, interpolating linearly inside the selected bucket. The +Inf
// bucket reports the last finite bound.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	cum := 0.0
	for i, c := range h.Counts {
		prev := cum
		cum += float64(c)
		if cum < target || c == 0 {
			continue
		}
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		frac := (target - prev) / float64(c)
		return lo + frac*(h.Bounds[i]-lo)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a frozen, serializable copy of a registry. Snapshots from
// independent runs of the same workload merge into campaign-level
// aggregates.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Help       map[string]string            `json:"help,omitempty"`
}

// NewSnapshot returns an empty snapshot ready to merge into.
func NewSnapshot() Snapshot {
	return Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Help:       map[string]string{},
	}
}

// Merge folds other into s: counters and histogram buckets add, gauges keep
// the maximum (gauges in this codebase are high-water marks or ratios, for
// which max is the meaningful cross-run aggregate). Histograms must share
// bucket geometry.
func (s *Snapshot) Merge(other Snapshot) error {
	if s.Counters == nil {
		*s = NewSnapshot()
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	for name, v := range other.Gauges {
		if cur, ok := s.Gauges[name]; !ok || v > cur {
			s.Gauges[name] = v
		}
	}
	for name, oh := range other.Histograms {
		sh, ok := s.Histograms[name]
		if !ok {
			sh = HistogramSnapshot{
				Bounds: append([]float64(nil), oh.Bounds...),
				Counts: make([]uint64, len(oh.Counts)),
			}
		}
		if len(sh.Bounds) != len(oh.Bounds) || len(sh.Counts) != len(oh.Counts) {
			return fmt.Errorf("metrics: histogram %q bucket geometry mismatch (%d vs %d bounds)",
				name, len(sh.Bounds), len(oh.Bounds))
		}
		for i, b := range oh.Bounds {
			if sh.Bounds[i] != b {
				return fmt.Errorf("metrics: histogram %q bound %d differs (%v vs %v)", name, i, sh.Bounds[i], b)
			}
		}
		for i, c := range oh.Counts {
			sh.Counts[i] += c
		}
		sh.Sum += oh.Sum
		sh.Count += oh.Count
		s.Histograms[name] = sh
	}
	if s.Help == nil {
		s.Help = map[string]string{}
	}
	for base, help := range other.Help {
		if s.Help[base] == "" {
			s.Help[base] = help
		}
	}
	return nil
}

// WriteJSON writes the snapshot as indented JSON.
func WriteJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON parses a snapshot previously written by WriteJSON.
func ReadJSON(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("metrics: parse JSON snapshot: %w", err)
	}
	for name, h := range s.Histograms {
		if len(h.Counts) != len(h.Bounds)+1 {
			return Snapshot{}, fmt.Errorf("metrics: histogram %q has %d counts for %d bounds",
				name, len(h.Counts), len(h.Bounds))
		}
	}
	return s, nil
}
