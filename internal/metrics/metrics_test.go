package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := New()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("test_total", ""); again != c {
		t.Fatal("re-registering a counter must return the same instrument")
	}

	g := r.Gauge("test_gauge", "a gauge")
	g.Set(1.5)
	g.Add(0.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	g.SetMax(1) // below current: no-op
	if got := g.Value(); got != 2 {
		t.Fatalf("SetMax lowered the gauge to %v", got)
	}
	g.SetMax(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("SetMax = %v, want 7", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", []float64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// All no-ops; must not panic.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestInvalidNamesAndBounds(t *testing.T) {
	r := New()
	if r.Counter("bad name", "") != nil {
		t.Fatal("space in name must be rejected")
	}
	if r.Counter("", "") != nil {
		t.Fatal("empty name must be rejected")
	}
	if r.Histogram("h", "", nil) != nil {
		t.Fatal("empty bounds must be rejected")
	}
	if r.Histogram("h", "", []float64{1, 1}) != nil {
		t.Fatal("non-increasing bounds must be rejected")
	}
	if r.Histogram("h", "", []float64{1, math.Inf(1)}) != nil {
		t.Fatal("explicit +Inf bound must be rejected (it is implicit)")
	}
	if r.Histogram("h", "", []float64{math.NaN()}) != nil {
		t.Fatal("NaN bound must be rejected")
	}
}

// TestHistogramBucketMath pins the bucket edge semantics: x <= bound lands
// in the bucket (Prometheus le semantics), anything past the last bound
// lands in the implicit +Inf bucket.
func TestHistogramBucketMath(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "latency", []float64{1, 2, 4})
	for _, x := range []float64{
		-5,  // below the first bound -> bucket 0
		0,   // -> bucket 0
		1,   // exactly at bound 0 -> bucket 0 (le semantics)
		1.5, // -> bucket 1
		2,   // exactly at bound 1 -> bucket 1
		3,   // -> bucket 2
		4,   // exactly at the last finite bound -> bucket 2
		4.1, // -> +Inf bucket
		100, // -> +Inf bucket
	} {
		h.Observe(x)
	}
	snap := r.Snapshot()
	hs := snap.Histograms["lat_seconds"]
	wantCounts := []uint64{3, 2, 2, 2}
	if len(hs.Counts) != len(wantCounts) {
		t.Fatalf("got %d buckets, want %d", len(hs.Counts), len(wantCounts))
	}
	for i, want := range wantCounts {
		if hs.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, hs.Counts[i], want, hs.Counts)
		}
	}
	if hs.Count != 9 {
		t.Errorf("count = %d, want 9", hs.Count)
	}
	wantSum := -5.0 + 0 + 1 + 1.5 + 2 + 3 + 4 + 4.1 + 100
	if math.Abs(hs.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", hs.Sum, wantSum)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	bounds := []float64{1, 2}
	r1, r2 := New(), New()
	h1 := r1.Histogram("d", "", bounds)
	h2 := r2.Histogram("d", "", bounds)
	r1.Counter("n_total", "").Add(3)
	r2.Counter("n_total", "").Add(4)
	r1.Gauge("hw", "").Set(10)
	r2.Gauge("hw", "").Set(25)
	h1.Observe(0.5)
	h1.Observe(5)
	h2.Observe(1.5)

	s := r1.Snapshot()
	if err := s.Merge(r2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if s.Counters["n_total"] != 7 {
		t.Errorf("merged counter = %d, want 7", s.Counters["n_total"])
	}
	if s.Gauges["hw"] != 25 {
		t.Errorf("merged gauge = %v, want max 25", s.Gauges["hw"])
	}
	hs := s.Histograms["d"]
	if want := []uint64{1, 1, 1}; len(hs.Counts) != 3 ||
		hs.Counts[0] != want[0] || hs.Counts[1] != want[1] || hs.Counts[2] != want[2] {
		t.Errorf("merged buckets = %v, want %v", hs.Counts, want)
	}
	if hs.Count != 3 || math.Abs(hs.Sum-7) > 1e-9 {
		t.Errorf("merged count/sum = %d/%v, want 3/7", hs.Count, hs.Sum)
	}

	// Geometry mismatch must fail loudly.
	r3 := New()
	r3.Histogram("d", "", []float64{1, 2, 3}).Observe(1)
	if err := s.Merge(r3.Snapshot()); err == nil {
		t.Fatal("merging mismatched histogram geometry must error")
	}
}

func TestMergeIntoZeroSnapshot(t *testing.T) {
	r := New()
	r.Counter("c_total", "").Inc()
	r.Histogram("h", "", []float64{1}).Observe(0.5)
	var s Snapshot // zero value, maps nil
	if err := s.Merge(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if s.Counters["c_total"] != 1 || s.Histograms["h"].Count != 1 {
		t.Fatalf("merge into zero snapshot lost data: %+v", s)
	}
}

func TestHistogramQuantile(t *testing.T) {
	hs := HistogramSnapshot{
		Bounds: []float64{1, 2, 3},
		Counts: []uint64{10, 10, 0, 0},
		Count:  20,
	}
	if q := hs.Quantile(0.5); q < 0.9 || q > 1.1 {
		t.Errorf("P50 = %v, want ~1", q)
	}
	if q := hs.Quantile(1); q < 1.9 || q > 2.0 {
		t.Errorf("P100 = %v, want ~2", q)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	// Mass in the +Inf bucket reports the last finite bound.
	overflow := HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{0, 5}, Count: 5}
	if q := overflow.Quantile(0.99); q != 1 {
		t.Errorf("+Inf-bucket quantile = %v, want last bound 1", q)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []float64{0.5})
	g := r.Gauge("g", "")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i%2) * 1.0)
				g.SetMax(float64(w*per + i))
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if g.Value() != workers*per-1 {
		t.Errorf("gauge high-water = %v, want %d", g.Value(), workers*per-1)
	}
}

func TestBoundsHelpers(t *testing.T) {
	lin := LinearBounds(10, 5)
	if len(lin) != 5 || lin[0] != 2 || lin[4] != 10 {
		t.Errorf("LinearBounds = %v", lin)
	}
	exp := ExponentialBounds(1, 2, 4)
	if len(exp) != 4 || exp[0] != 1 || exp[3] != 8 {
		t.Errorf("ExponentialBounds = %v", exp)
	}
	if LinearBounds(0, 3) != nil || ExponentialBounds(1, 1, 3) != nil {
		t.Error("degenerate bound requests must return nil")
	}
}
