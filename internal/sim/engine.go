// Package sim is a deterministic discrete-event simulation engine: a
// virtual clock, a binary-heap event queue with stable FIFO ordering for
// simultaneous events, cancellable timers, and derived random-number
// streams so that independent subsystems draw from decoupled, reproducible
// sources.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/trace"
)

// Time is virtual simulation time in seconds since the start of the run.
type Time float64

// Duration converts a virtual span in seconds to time.Duration for display.
func (t Time) Duration() time.Duration {
	return time.Duration(float64(t) * float64(time.Second))
}

// Event is a scheduled callback.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index; -1 when fired or cancelled
}

// Cancelled reports whether the event was cancelled or already fired.
func (e *Event) Cancelled() bool { return e == nil || e.index == -1 }

// At returns the scheduled firing time.
func (e *Event) At() Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine runs events in virtual-time order. The zero value is not usable;
// create with NewEngine.
type Engine struct {
	now   Time
	seq   uint64
	queue eventQueue
	// EventLimit aborts Run after this many events (0 = no limit); it is a
	// guard against runaway event loops in tests.
	EventLimit uint64
	fired      uint64
	metrics    *EngineMetrics
	tracer     *trace.Tracer
	runSpan    trace.SpanID
}

// ErrEventLimit is returned by Run variants when EventLimit is exceeded.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// NewEngine creates an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run after delay (>= 0) and returns a handle that
// can be cancelled. Events scheduled for the same instant fire in
// scheduling order.
func (e *Engine) Schedule(delay Time, fn func()) (*Event, error) {
	if delay < 0 || math.IsNaN(float64(delay)) {
		return nil, fmt.Errorf("sim: invalid delay %v", delay)
	}
	if fn == nil {
		return nil, errors.New("sim: nil event callback")
	}
	ev := &Event{at: e.now + delay, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	if m := e.metrics; m != nil {
		m.EventsScheduled.Inc()
		m.QueueHighWater.SetMax(float64(len(e.queue)))
	}
	return ev, nil
}

// MustSchedule is Schedule for callers with statically valid arguments.
func (e *Engine) MustSchedule(delay Time, fn func()) *Event {
	ev, err := e.Schedule(delay, fn)
	if err != nil {
		panic(err)
	}
	return ev
}

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index == -1 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	if m := e.metrics; m != nil {
		m.EventsCancelled.Inc()
	}
}

// Step fires the earliest pending event. It reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	e.fired++
	if m := e.metrics; m != nil {
		m.EventsFired.Inc()
	}
	ev.fn()
	return true
}

// Run fires events until the queue drains.
func (e *Engine) Run() error {
	e.metrics.beginRun(e.now)
	defer func() { e.metrics.endRun(e.now) }()
	e.beginRunSpan("sim.run")
	defer e.endRunSpan()
	for e.Step() {
		if e.EventLimit > 0 && e.fired > e.EventLimit {
			return ErrEventLimit
		}
	}
	return nil
}

// RunUntil fires events with firing time <= deadline, then advances the
// clock to the deadline.
func (e *Engine) RunUntil(deadline Time) error {
	e.metrics.beginRun(e.now)
	defer func() { e.metrics.endRun(e.now) }()
	e.beginRunSpan("sim.run")
	defer e.endRunSpan()
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		if !e.Step() {
			break
		}
		if e.EventLimit > 0 && e.fired > e.EventLimit {
			return ErrEventLimit
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}
