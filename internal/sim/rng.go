package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
)

// Streams hands out independent, reproducible random sources derived from a
// master seed, one per named subsystem. Two Streams built from the same
// seed produce identical sequences per name, regardless of the order in
// which names are first requested.
type Streams struct {
	seed int64
	used map[string]*rand.Rand
}

// NewStreams creates a stream factory rooted at seed.
func NewStreams(seed int64) *Streams {
	return &Streams{seed: seed, used: map[string]*rand.Rand{}}
}

// Get returns the stream for name, creating it deterministically on first
// use.
func (s *Streams) Get(name string) *rand.Rand {
	if r, ok := s.used[name]; ok {
		return r
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(s.seed))
	h := sha256.New()
	h.Write([]byte("jrsnd-stream"))
	h.Write(buf[:])
	h.Write([]byte(name))
	sum := h.Sum(nil)
	r := rand.New(rand.NewSource(int64(binary.BigEndian.Uint64(sum[:8]))))
	s.used[name] = r
	return r
}
