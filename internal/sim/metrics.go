package sim

import (
	"time"

	"repro/internal/metrics"
)

// EngineMetrics is the engine's telemetry handle set. Every field may be
// nil (instrument only what you care about); a nil *EngineMetrics disables
// instrumentation entirely, which is the default and costs the hot path a
// single pointer check.
type EngineMetrics struct {
	// EventsFired counts callbacks executed by Step.
	EventsFired *metrics.Counter
	// EventsScheduled counts successful Schedule calls.
	EventsScheduled *metrics.Counter
	// EventsCancelled counts effective Cancel calls.
	EventsCancelled *metrics.Counter
	// QueueHighWater tracks the maximum pending-event queue depth.
	QueueHighWater *metrics.Gauge
	// VirtualWallRatio is virtual seconds advanced per wall-clock second
	// across Run/RunUntil calls — the engine's speedup over real time.
	VirtualWallRatio *metrics.Gauge

	virtualStart Time
	wallStart    time.Time
}

// NewEngineMetrics registers the standard engine instruments on reg. A nil
// registry yields a fully inert (but non-nil) handle set.
func NewEngineMetrics(reg *metrics.Registry) *EngineMetrics {
	return &EngineMetrics{
		EventsFired:      reg.Counter("jrsnd_sim_events_fired_total", "simulation events executed"),
		EventsScheduled:  reg.Counter("jrsnd_sim_events_scheduled_total", "simulation events scheduled"),
		EventsCancelled:  reg.Counter("jrsnd_sim_events_cancelled_total", "simulation events cancelled before firing"),
		QueueHighWater:   reg.Gauge("jrsnd_sim_queue_high_water", "maximum pending-event queue depth"),
		VirtualWallRatio: reg.Gauge("jrsnd_sim_virtual_wall_ratio", "virtual seconds simulated per wall-clock second"),
	}
}

// Instrument attaches m to the engine; pass nil to detach.
func (e *Engine) Instrument(m *EngineMetrics) { e.metrics = m }

// beginRun snapshots the clocks so endRun can report the virtual-vs-wall
// time ratio of one Run/RunUntil span.
func (m *EngineMetrics) beginRun(now Time) {
	if m == nil {
		return
	}
	m.virtualStart = now
	m.wallStart = time.Now() //jrsnd:allow wallclock speedup telemetry only: the virtual/wall ratio gauge reads the real clock but never feeds simulated state
}

func (m *EngineMetrics) endRun(now Time) {
	if m == nil {
		return
	}
	wall := time.Since(m.wallStart).Seconds() //jrsnd:allow wallclock speedup telemetry only: the virtual/wall ratio gauge reads the real clock but never feeds simulated state
	if wall <= 0 {
		return
	}
	m.VirtualWallRatio.SetMax(float64(now-m.virtualStart) / wall)
}
