package sim

import (
	"testing"

	"repro/internal/metrics"
)

func TestEngineInstrumentation(t *testing.T) {
	reg := metrics.New()
	e := NewEngine()
	e.Instrument(NewEngineMetrics(reg))

	var fired int
	for i := 0; i < 5; i++ {
		e.MustSchedule(Time(i), func() { fired++ })
	}
	cancel := e.MustSchedule(10, func() { fired++ })
	e.Cancel(cancel)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 5 {
		t.Fatalf("fired %d callbacks, want 5", fired)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["jrsnd_sim_events_scheduled_total"]; got != 6 {
		t.Errorf("scheduled = %d, want 6", got)
	}
	if got := snap.Counters["jrsnd_sim_events_fired_total"]; got != 5 {
		t.Errorf("fired = %d, want 5", got)
	}
	if got := snap.Counters["jrsnd_sim_events_cancelled_total"]; got != 1 {
		t.Errorf("cancelled = %d, want 1", got)
	}
	if got := snap.Gauges["jrsnd_sim_queue_high_water"]; got < 5 || got > 6 {
		t.Errorf("queue high water = %v, want 5..6", got)
	}
	if _, ok := snap.Gauges["jrsnd_sim_virtual_wall_ratio"]; !ok {
		t.Error("virtual/wall ratio gauge not registered")
	}
}

func TestEngineUninstrumentedStillRuns(t *testing.T) {
	e := NewEngine()
	ran := false
	e.MustSchedule(0, func() { ran = true })
	if err := e.Run(); err != nil || !ran {
		t.Fatalf("uninstrumented run failed: %v", err)
	}
	// Inert handle set from a nil registry must also be safe.
	e2 := NewEngine()
	e2.Instrument(NewEngineMetrics(nil))
	e2.MustSchedule(0, func() {})
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
}
