package sim

import "repro/internal/trace"

// Span tracing for event dispatch: the engine opens one "sim.run" span per
// Run/RunUntil call, which protocol layers use as the causal root for
// their own spans (a D-NDP attempt parents to the run that dispatched it).
// A nil tracer keeps the hot path at a single pointer check, mirroring
// EngineMetrics.

// Trace attaches a tracer to the engine; pass nil to detach.
func (e *Engine) Trace(t *trace.Tracer) { e.tracer = t }

// Tracer returns the attached tracer (nil when tracing is off), so
// layered components can emit spans through the engine's stream.
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// RunSpan returns the ID of the currently open sim.run span, or 0 when
// the engine is not inside Run/RunUntil (or tracing is off). Protocol
// spans use it as their parent.
func (e *Engine) RunSpan() trace.SpanID { return e.runSpan }

// beginRunSpan opens the dispatch span; paired with endRunSpan.
func (e *Engine) beginRunSpan(name string) {
	if e.tracer == nil {
		return
	}
	e.runSpan = e.tracer.Start(float64(e.now), 0, -1, -1, name)
}

func (e *Engine) endRunSpan() {
	if e.tracer == nil {
		return
	}
	e.tracer.End(float64(e.now), e.runSpan, -1, -1, "")
	e.runSpan = 0
}
