package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	delays := []Time{5, 1, 3, 2, 4}
	for i, d := range delays {
		i, d := i, d
		e.MustSchedule(d, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 2, 4, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %v, want 5", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.MustSchedule(1, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.MustSchedule(1, func() {
		times = append(times, e.Now())
		e.MustSchedule(2, func() {
			times = append(times, e.Now())
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v, want [1 3]", times)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.MustSchedule(1, func() { fired = true })
	e.Cancel(ev)
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(nil)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var fired []int
	var evs []*Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, e.MustSchedule(Time(i), func() { fired = append(fired, i) }))
	}
	for i := 5; i < 15; i++ {
		e.Cancel(evs[i])
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 10 {
		t.Fatalf("fired %d events, want 10", len(fired))
	}
	if !sort.IntsAreSorted(fired) {
		t.Fatalf("fired order %v not sorted", fired)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{1, 2, 3, 4, 5} {
		d := d
		e.MustSchedule(d, func() { fired = append(fired, d) })
	}
	if err := e.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 1,2,3", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	// RunUntil past all events advances the clock to the deadline.
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10", e.Now())
	}
}

func TestScheduleValidation(t *testing.T) {
	e := NewEngine()
	if _, err := e.Schedule(-1, func() {}); err == nil {
		t.Fatal("accepted negative delay")
	}
	if _, err := e.Schedule(1, nil); err == nil {
		t.Fatal("accepted nil callback")
	}
}

func TestEventLimit(t *testing.T) {
	e := NewEngine()
	e.EventLimit = 10
	var loop func()
	loop = func() { e.MustSchedule(1, loop) }
	e.MustSchedule(1, loop)
	if err := e.Run(); err != ErrEventLimit {
		t.Fatalf("err = %v, want ErrEventLimit", err)
	}
}

func TestTimeDuration(t *testing.T) {
	if got := Time(1.5).Duration(); got.Seconds() != 1.5 {
		t.Fatalf("Duration = %v, want 1.5s", got)
	}
	if got := Time(0).Duration(); got != 0 {
		t.Fatalf("Duration(0) = %v", got)
	}
}

func TestStreamsDeterministicAndIndependent(t *testing.T) {
	s1 := NewStreams(7)
	s2 := NewStreams(7)
	// Request in different orders; same-name streams must agree.
	a1 := s1.Get("alpha")
	b1 := s1.Get("beta")
	b2 := s2.Get("beta")
	a2 := s2.Get("alpha")
	for i := 0; i < 100; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatal("alpha streams diverge")
		}
		if b1.Uint64() != b2.Uint64() {
			t.Fatal("beta streams diverge")
		}
	}
	// Get returns the same underlying stream instance per name.
	if s1.Get("alpha") != a1 {
		t.Fatal("Get created a second instance for the same name")
	}
	// Different seeds differ.
	s3 := NewStreams(8)
	same := true
	c := s3.Get("alpha")
	ref := NewStreams(7).Get("alpha")
	for i := 0; i < 10; i++ {
		if c.Uint64() != ref.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

// Property: for any batch of random delays, events fire in nondecreasing
// time order and the clock never runs backwards.
func TestPropertyMonotoneClock(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		prev := Time(-1)
		ok := true
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			e.MustSchedule(Time(rng.Float64()*100), func() {
				if e.Now() < prev {
					ok = false
				}
				prev = e.Now()
				// Occasionally schedule follow-ups.
				if rng.Intn(4) == 0 {
					e.MustSchedule(Time(rng.Float64()*10), func() {
						if e.Now() < prev {
							ok = false
						}
						prev = e.Now()
					})
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
