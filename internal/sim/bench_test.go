package sim

import (
	"testing"
)

// Engine micro-benchmarks, gated by cmd/jrsnd-benchgate against the
// checked-in BENCH_sim.json baseline: the scheduler's heap operations and
// dispatch loop are the floor under every protocol run, so a regression
// here taxes the whole evaluation.

// BenchmarkScheduleRun measures the schedule → dispatch round trip: fill
// the queue with k events at staggered virtual times, then drain it.
func BenchmarkScheduleRun(b *testing.B) {
	const k = 1024
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < k; j++ {
			e.MustSchedule(Time(j%37)*0.001, func() {})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleCancel measures the cancel path: events that never run
// still cost their heap insertion plus lazy removal.
func BenchmarkScheduleCancel(b *testing.B) {
	const k = 1024
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		evs := make([]*Event, k)
		for j := 0; j < k; j++ {
			evs[j] = e.MustSchedule(Time(j)*0.001, func() {})
		}
		for _, ev := range evs {
			e.Cancel(ev)
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCascade measures self-rescheduling dispatch — the shape of a
// protocol timer chain — without the bulk-insert phase dominating.
func BenchmarkCascade(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		remaining := 4096
		var tick func()
		tick = func() {
			if remaining--; remaining > 0 {
				e.MustSchedule(0.001, tick)
			}
		}
		e.MustSchedule(0.001, tick)
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreams measures named-RNG stream derivation, which every
// deployment component draws through.
func BenchmarkStreams(b *testing.B) {
	names := []string{"dndp-start", "mndp-start", "chaos-churn", "jammer", "medium"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewStreams(42)
		for _, name := range names {
			s.Get(name).Int63()
		}
	}
}
