// Package adversary implements Byzantine on-air behaviors for the JR-SND
// simulation: insiders (§III) who hold compromised spread codes and —
// unlike the jammers, which only destroy frames — record, replay, forge,
// corrupt, and flood protocol messages as bytes. Every behavior plugs into
// radio.Medium as an Interceptor, composing with the jammer and the
// channel FaultInjector from the fault layer, and operates strictly on
// wire frames: an adversary can only do what hostile bytes can do, which
// is exactly what the codec hardening and the core defenses are measured
// against.
//
// All randomness comes from the caller-supplied seed-derived stream and
// all timing from the discrete-event engine, so adversarial runs replay
// byte-for-byte under the same seed.
package adversary

import (
	"fmt"
	"math/rand"

	"repro/internal/codepool"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Kind selects a Byzantine behavior.
type Kind int

// Byzantine behavior kinds.
const (
	// None disables the adversary (the zero value).
	None Kind = iota
	// Replay records valid AUTH frames off the air and reinjects exact
	// copies later — after the victims' handshake records were reaped —
	// probing the replay-window defense.
	Replay
	// Forge decodes observed AUTH1 frames, rewrites the sender identity
	// and randomizes the MAC, and injects the re-encoded forgery — a
	// semantically well-formed frame that must die at MAC verification.
	Forge
	// BitFlip corrupts k random bytes of a frame in flight (post-encode,
	// pre-decode), driving the decoder's error taxonomy and the MAC/
	// signature checks with near-valid bytes.
	BitFlip
	// Flood drives the §V-D DoS path through the codec: waves of forged
	// AUTH1 frames under fresh identities at the victims holding the
	// attacker's compromised codes.
	Flood
)

// Kinds lists every active behavior, in a stable order.
var Kinds = []Kind{Replay, Forge, BitFlip, Flood}

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Replay:
		return "replay"
	case Forge:
		return "forge"
	case BitFlip:
		return "bitflip"
	case Flood:
		return "flood"
	default:
		return "unknown"
	}
}

// ParseKind maps a CLI flag value to a Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range append([]Kind{None}, Kinds...) {
		if k.String() == s {
			return k, nil
		}
	}
	return None, fmt.Errorf("adversary: unknown kind %q (want replay, forge, bitflip, or flood)", s)
}

// Counts reports what an adversary did, for assertions and reports.
type Counts struct {
	Observed  int // frames seen on the air (excluding its own)
	Recorded  int // frames captured for later reinjection
	Injected  int // frames this adversary transmitted
	Corrupted int // frames mutated in flight
}

// Byzantine is an armed adversary: an on-air interceptor plus an optional
// active phase (Launch) and introspection.
type Byzantine interface {
	radio.Interceptor
	// Launch schedules the behavior's active transmissions (flood waves);
	// passive behaviors no-op. Call once, before running the engine.
	Launch() error
	// Kind identifies the behavior.
	Kind() Kind
	// Counts returns the activity counters so far.
	Counts() Counts
}

// Transmitter is the medium surface an adversary injects through;
// *radio.Medium satisfies it.
type Transmitter interface {
	Broadcast(from int, msg radio.Message) error
	Unicast(from, to int, msg radio.Message) error
}

// FloodTarget is one (victim, compromised code) pair a Flood adversary
// hammers.
type FloodTarget struct {
	Victim int
	Code   codepool.CodeID
}

// Profile configures a Byzantine behavior. Node, Rng, Engine, Tx, and
// Limits are required; the per-behavior knobs default sensibly when zero.
type Profile struct {
	Node   int            // the adversary's (compromised) node index
	Rng    *rand.Rand     // seed-derived stream; owned by the adversary
	Engine *sim.Engine    // event engine for scheduling injections
	Tx     Transmitter    // the medium to inject through
	Limits wire.Limits    // codec caps for decoding/forging frames

	// MaxInjections caps scheduled reinjections/forgeries (Replay, Forge)
	// so a long run cannot exhaust the forged-ID space. Default 64.
	MaxInjections int
	// ReplayDelay is how long after capture a recorded frame is
	// reinjected (Replay). Should exceed the victims' session timeout so
	// the replay lands on reaped handshake state. Default 1.0 s.
	ReplayDelay sim.Time

	// FlipProb is the per-frame corruption probability (BitFlip).
	// Default 0.3.
	FlipProb float64
	// FlipBytes is how many random bytes are XORed per corrupted frame
	// (BitFlip). Default 3.
	FlipBytes int

	// NonceBytes and MACBytes size the forged AUTH fields (Forge, Flood).
	// Defaults 3 and 20 (Table I widths).
	NonceBytes, MACBytes int
	// AuthBits is the airtime size of a forged AUTH1 (Flood). Default 196.
	AuthBits int
	// FloodTargets are the (victim, code) pairs to hammer (Flood).
	FloodTargets []FloodTarget
	// FloodWaves is how many waves to inject (Flood). Default 3.
	FloodWaves int
	// FloodInterval paces the waves (Flood). Default 0.011 s (≈ t_key).
	FloodInterval sim.Time
}

func (p *Profile) applyDefaults() {
	if p.MaxInjections == 0 {
		p.MaxInjections = 64
	}
	if p.ReplayDelay == 0 {
		p.ReplayDelay = 1.0
	}
	if p.FlipProb == 0 {
		p.FlipProb = 0.3
	}
	if p.FlipBytes == 0 {
		p.FlipBytes = 3
	}
	if p.NonceBytes == 0 {
		p.NonceBytes = 3
	}
	if p.MACBytes == 0 {
		p.MACBytes = 20
	}
	if p.AuthBits == 0 {
		p.AuthBits = 196
	}
	if p.FloodWaves == 0 {
		p.FloodWaves = 3
	}
	if p.FloodInterval == 0 {
		p.FloodInterval = 0.011
	}
}

func (p *Profile) validate() error {
	switch {
	case p.Rng == nil:
		return fmt.Errorf("adversary: Rng must be set")
	case p.Engine == nil:
		return fmt.Errorf("adversary: Engine must be set")
	case p.Tx == nil:
		return fmt.Errorf("adversary: Tx must be set")
	}
	return p.Limits.Validate()
}

// New builds an armed behavior of the given kind.
func New(kind Kind, profile Profile) (Byzantine, error) {
	profile.applyDefaults()
	if err := profile.validate(); err != nil {
		return nil, err
	}
	switch kind {
	case Replay:
		return &replayer{p: profile}, nil
	case Forge:
		return &forger{p: profile}, nil
	case BitFlip:
		return &bitFlipper{p: profile}, nil
	case Flood:
		return &flooder{p: profile}, nil
	default:
		return nil, fmt.Errorf("adversary: kind %d has no behavior", kind)
	}
}
