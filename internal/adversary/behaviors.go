package adversary

import (
	"repro/internal/ibc"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/wire"
)

// forgedIDBase is where forged sender identities start — far above any
// simulated deployment's ID range, so a forgery can never collide with an
// honest node.
const forgedIDBase = 50000

// replayer records AUTH frames off the air and reinjects byte-exact
// copies after ReplayDelay. The copy is taken at capture time
// (copy-on-store), so later mutation of the original buffer cannot change
// what is replayed, and the replayed frame is transmitted from the
// adversary's own radio — its physical neighbors hear it.
type replayer struct {
	p         Profile
	counts    Counts
	scheduled int
}

func (r *replayer) Kind() Kind     { return Replay }
func (r *replayer) Counts() Counts { return r.counts }
func (r *replayer) Launch() error  { return nil }

func (r *replayer) Intercept(from, to int, msg radio.Message) radio.Message {
	if from == r.p.Node {
		return msg // own injections are not re-recorded
	}
	r.counts.Observed++
	frame, ok := msg.Payload.([]byte)
	if !ok || (msg.Kind != wire.KindAuth1 && msg.Kind != wire.KindAuth2) {
		return msg
	}
	if r.scheduled >= r.p.MaxInjections {
		return msg
	}
	r.scheduled++
	r.counts.Recorded++
	rec := msg
	rec.Payload = append([]byte(nil), frame...)
	r.p.Engine.MustSchedule(r.p.ReplayDelay, func() {
		r.counts.Injected++
		_ = r.p.Tx.Broadcast(r.p.Node, rec)
	})
	return msg
}

// forger decodes observed AUTH1 frames, substitutes a fresh forged sender
// identity and a random MAC, and injects the re-encoded forgery — a
// structurally perfect frame whose only flaw is cryptographic.
type forger struct {
	p         Profile
	counts    Counts
	scheduled int
}

func (f *forger) Kind() Kind     { return Forge }
func (f *forger) Counts() Counts { return f.counts }
func (f *forger) Launch() error  { return nil }

func (f *forger) Intercept(from, to int, msg radio.Message) radio.Message {
	if from == f.p.Node {
		return msg
	}
	f.counts.Observed++
	frame, ok := msg.Payload.([]byte)
	if !ok || msg.Kind != wire.KindAuth1 || f.scheduled >= f.p.MaxInjections {
		return msg
	}
	kind, payload, err := wire.Decode(frame, f.p.Limits)
	if err != nil || kind != wire.KindAuth1 {
		return msg
	}
	auth := payload.(wire.Auth)
	auth.Sender = ibc.NodeID(forgedIDBase + f.scheduled)
	for i := range auth.MAC {
		auth.MAC[i] = byte(f.p.Rng.Intn(256))
	}
	forged, err := wire.Encode(wire.KindAuth1, auth, f.p.Limits)
	if err != nil {
		return msg
	}
	f.scheduled++
	inj := msg
	inj.Payload = forged
	f.p.Engine.MustSchedule(0, func() {
		f.counts.Injected++
		_ = f.p.Tx.Broadcast(f.p.Node, inj)
	})
	return msg
}

// bitFlipper XORs FlipBytes random bytes of a frame in flight with
// probability FlipProb, modeling a Byzantine relay (or targeted
// interference) that mangles bytes the DSSS layer's ECC failed to fix.
// The corruption happens on a copy: the transmitter's buffer is never
// touched.
type bitFlipper struct {
	p      Profile
	counts Counts
}

func (b *bitFlipper) Kind() Kind     { return BitFlip }
func (b *bitFlipper) Counts() Counts { return b.counts }
func (b *bitFlipper) Launch() error  { return nil }

func (b *bitFlipper) Intercept(from, to int, msg radio.Message) radio.Message {
	if from == b.p.Node {
		return msg
	}
	b.counts.Observed++
	frame, ok := msg.Payload.([]byte)
	if !ok || len(frame) == 0 {
		return msg
	}
	if b.p.Rng.Float64() >= b.p.FlipProb {
		return msg
	}
	cp := append([]byte(nil), frame...)
	for i := 0; i < b.p.FlipBytes; i++ {
		pos := b.p.Rng.Intn(len(cp))
		cp[pos] ^= byte(1 + b.p.Rng.Intn(255)) // nonzero mask: always flips
	}
	b.counts.Corrupted++
	out := msg
	out.Payload = cp
	return out
}

// flooder is the §V-D DoS attack driven through the codec: waves of
// forged AUTH1 frames under fresh identities, one per (victim,
// compromised code) target, paced at FloodInterval.
type flooder struct {
	p      Profile
	counts Counts
}

func (f *flooder) Kind() Kind     { return Flood }
func (f *flooder) Counts() Counts { return f.counts }

func (f *flooder) Intercept(from, to int, msg radio.Message) radio.Message {
	if from != f.p.Node {
		f.counts.Observed++
	}
	return msg
}

func (f *flooder) Launch() error {
	fake := forgedIDBase
	for wave := 0; wave < f.p.FloodWaves; wave++ {
		at := f.p.FloodInterval * sim.Time(wave)
		for _, tgt := range f.p.FloodTargets {
			nonce := f.randBytes(f.p.NonceBytes)
			mac := f.randBytes(f.p.MACBytes)
			auth := wire.Auth{
				Sender: ibc.NodeID(fake),
				Peer:   ibc.NodeID(tgt.Victim),
				Nonce:  nonce,
				MAC:    mac,
			}
			fake++
			frame, err := wire.Encode(wire.KindAuth1, auth, f.p.Limits)
			if err != nil {
				return err
			}
			tgt := tgt
			msg := radio.Message{
				Kind:        wire.KindAuth1,
				Code:        tgt.Code,
				PayloadBits: f.p.AuthBits,
				Payload:     frame,
			}
			if _, err := f.p.Engine.Schedule(at, func() {
				f.counts.Injected++
				_ = f.p.Tx.Unicast(f.p.Node, tgt.Victim, msg)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func (f *flooder) randBytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(f.p.Rng.Intn(256))
	}
	return out
}
