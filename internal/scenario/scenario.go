// Package scenario provides deployment presets for the examples and
// integration tests: the battlefield platoon layouts and convoy columns
// that motivate the paper's introduction (single-authority military
// MANETs with unpredictable encounters under jamming).
package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/faults"
	"repro/internal/field"
	"repro/internal/sim"
)

// Platoons scatters numPlatoons cluster centers uniformly and places
// perPlatoon nodes within radius of each center — the squad-based
// structure of a battlefield deployment. It returns one position per node
// (numPlatoons·perPlatoon total).
func Platoons(f field.Field, numPlatoons, perPlatoon int, radius float64, rng *rand.Rand) ([]field.Point, error) {
	if numPlatoons < 1 || perPlatoon < 1 {
		return nil, fmt.Errorf("scenario: need at least one platoon and one member")
	}
	if radius <= 0 {
		return nil, fmt.Errorf("scenario: radius %v must be positive", radius)
	}
	if rng == nil {
		return nil, fmt.Errorf("scenario: rng must be set")
	}
	pts := make([]field.Point, 0, numPlatoons*perPlatoon)
	for p := 0; p < numPlatoons; p++ {
		center := f.RandomPoint(rng)
		for i := 0; i < perPlatoon; i++ {
			ang := rng.Float64() * 2 * math.Pi
			r := radius * math.Sqrt(rng.Float64())
			pts = append(pts, f.Clamp(field.Point{
				X: center.X + r*math.Cos(ang),
				Y: center.Y + r*math.Sin(ang),
			}))
		}
	}
	return pts, nil
}

// Ambush models an attack on one squad: the perPlatoon members starting
// at node index platoonStart are knocked out in a stagger beginning at
// the given time, and each comes back after the outage, re-running
// discovery shortly after — the churn schedule an ambushed platoon's
// radios would exhibit. Use with faults.ScheduleChurn.
func Ambush(platoonStart, perPlatoon int, at, outage, stagger sim.Time) ([]faults.ChurnEvent, error) {
	if platoonStart < 0 || perPlatoon < 1 {
		return nil, fmt.Errorf("scenario: ambush needs a valid platoon slice")
	}
	if at < 0 || outage <= 0 || stagger < 0 {
		return nil, fmt.Errorf("scenario: ambush times must be non-negative (outage positive)")
	}
	plan := make([]faults.ChurnEvent, 0, perPlatoon)
	for i := 0; i < perPlatoon; i++ {
		crash := at + sim.Time(i)*stagger
		plan = append(plan, faults.ChurnEvent{
			Node:            platoonStart + i,
			CrashAt:         crash,
			RestartAt:       crash + outage,
			RediscoverAfter: outage / 8,
		})
	}
	return plan, nil
}

// Convoy places n nodes in a column with the given spacing, starting at
// start and heading along the unit vector (dx, dy) — vehicles on a road.
func Convoy(f field.Field, n int, start field.Point, dx, dy, spacing float64, jitter float64, rng *rand.Rand) ([]field.Point, error) {
	if n < 1 {
		return nil, fmt.Errorf("scenario: need at least one vehicle")
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("scenario: spacing %v must be positive", spacing)
	}
	norm := math.Hypot(dx, dy)
	if norm == 0 {
		return nil, fmt.Errorf("scenario: heading vector must be nonzero")
	}
	dx, dy = dx/norm, dy/norm
	pts := make([]field.Point, n)
	for i := range pts {
		jx, jy := 0.0, 0.0
		if jitter > 0 && rng != nil {
			jx = (rng.Float64()*2 - 1) * jitter
			jy = (rng.Float64()*2 - 1) * jitter
		}
		pts[i] = f.Clamp(field.Point{
			X: start.X + float64(i)*spacing*dx + jx,
			Y: start.Y + float64(i)*spacing*dy + jy,
		})
	}
	return pts, nil
}
