package scenario

import (
	"math/rand"
	"testing"

	"repro/internal/field"
)

func testField(t *testing.T) field.Field {
	t.Helper()
	f, err := field.New(5000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPlatoonsLayout(t *testing.T) {
	f := testField(t)
	rng := rand.New(rand.NewSource(1))
	pts, err := Platoons(f, 4, 10, 150, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 40 {
		t.Fatalf("got %d positions, want 40", len(pts))
	}
	for i, p := range pts {
		if !f.Contains(p) {
			t.Fatalf("position %d (%v) outside the field", i, p)
		}
	}
	// Members of the same platoon are within 2·radius of each other
	// (unless clamped at a border, which the seed avoids here).
	for platoon := 0; platoon < 4; platoon++ {
		base := pts[platoon*10]
		for i := 1; i < 10; i++ {
			if d := base.Dist(pts[platoon*10+i]); d > 300+1e-9 {
				t.Fatalf("platoon %d spread %v > 2·radius", platoon, d)
			}
		}
	}
}

func TestPlatoonsValidation(t *testing.T) {
	f := testField(t)
	rng := rand.New(rand.NewSource(2))
	if _, err := Platoons(f, 0, 5, 100, rng); err == nil {
		t.Fatal("accepted zero platoons")
	}
	if _, err := Platoons(f, 2, 0, 100, rng); err == nil {
		t.Fatal("accepted zero members")
	}
	if _, err := Platoons(f, 2, 5, 0, rng); err == nil {
		t.Fatal("accepted zero radius")
	}
	if _, err := Platoons(f, 2, 5, 100, nil); err == nil {
		t.Fatal("accepted nil rng")
	}
}

func TestConvoyLayout(t *testing.T) {
	f := testField(t)
	pts, err := Convoy(f, 10, field.Point{X: 100, Y: 100}, 1, 0, 200, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("got %d positions, want 10", len(pts))
	}
	for i := 1; i < 10; i++ {
		if d := pts[i-1].Dist(pts[i]); d < 199 || d > 201 {
			t.Fatalf("spacing %v between %d and %d, want 200", d, i-1, i)
		}
	}
	// Diagonal heading is normalized.
	diag, err := Convoy(f, 3, field.Point{X: 0, Y: 0}, 3, 4, 100, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := diag[0].Dist(diag[1]); d < 99 || d > 101 {
		t.Fatalf("diagonal spacing %v, want 100", d)
	}
}

func TestConvoyValidation(t *testing.T) {
	f := testField(t)
	if _, err := Convoy(f, 0, field.Point{}, 1, 0, 100, 0, nil); err == nil {
		t.Fatal("accepted zero vehicles")
	}
	if _, err := Convoy(f, 2, field.Point{}, 1, 0, 0, 0, nil); err == nil {
		t.Fatal("accepted zero spacing")
	}
	if _, err := Convoy(f, 2, field.Point{}, 0, 0, 100, 0, nil); err == nil {
		t.Fatal("accepted zero heading")
	}
}

func TestAmbushValidation(t *testing.T) {
	if _, err := Ambush(-1, 3, 0, 1, 0.1); err == nil {
		t.Fatal("negative platoon start accepted")
	}
	if _, err := Ambush(0, 0, 0, 1, 0.1); err == nil {
		t.Fatal("empty platoon accepted")
	}
	if _, err := Ambush(0, 3, 0, 0, 0.1); err == nil {
		t.Fatal("zero outage accepted")
	}
}

func TestAmbushSchedule(t *testing.T) {
	plan, err := Ambush(4, 3, 0.5, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 {
		t.Fatalf("plan has %d events, want 3", len(plan))
	}
	for i, e := range plan {
		if err := e.Validate(); err != nil {
			t.Fatalf("event %d invalid: %v", i, err)
		}
		if e.Node != 4+i {
			t.Fatalf("event %d hits node %d, want %d", i, e.Node, 4+i)
		}
		if i > 0 && plan[i].CrashAt <= plan[i-1].CrashAt {
			t.Fatalf("stagger not monotonic: %v", plan)
		}
	}
}
