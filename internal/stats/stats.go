// Package stats provides the small statistical toolkit the experiment
// harness uses: streaming mean/variance (Welford), Student-t confidence
// intervals for the per-point Monte-Carlo averages, and fixed-bin
// histograms for latency distributions.
package stats

import (
	"fmt"
	"math"
)

// Sample accumulates observations with Welford's streaming algorithm.
// The zero value is an empty sample.
type Sample struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if s.n < 1 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the 95% Student-t confidence interval of
// the mean (0 for n < 2).
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return tCritical95(s.n-1) * s.StdErr()
}

// String renders "mean ± ci95 (n=N)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", s.Mean(), s.CI95(), s.n)
}

// tCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom (table for small df, normal limit beyond).
func tCritical95(df int) float64 {
	table := []float64{
		0, // df=0 unused
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(table) {
		return table[df]
	}
	switch {
	case df < 40:
		return 2.030
	case df < 60:
		return 2.009
	case df < 120:
		return 1.990
	default:
		return 1.960
	}
}

// Histogram is a fixed-bin histogram over [Lo, Hi); values outside the
// range are clamped into the edge bins.
type Histogram struct {
	lo, hi float64
	bins   []int
	count  int
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: invalid range [%v, %v)", lo, hi)
	}
	if bins < 1 {
		return nil, fmt.Errorf("stats: bin count %d must be >= 1", bins)
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
	h.count++
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int { return h.count }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int { return h.bins[i] }

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// Merge adds the counts of other into h. The histograms must share the
// same range and bin count; a nil other is a no-op.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	if other.lo != h.lo || other.hi != h.hi || len(other.bins) != len(h.bins) {
		panic("stats: merging histograms with different geometry")
	}
	for i, c := range other.bins {
		h.bins[i] += c
	}
	h.count += other.count
}

// Quantile returns an approximate q-quantile (q in [0,1]) using the bin
// midpoints.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count)
	cum := 0.0
	width := (h.hi - h.lo) / float64(len(h.bins))
	for i, c := range h.bins {
		cum += float64(c)
		if cum >= target {
			return h.lo + (float64(i)+0.5)*width
		}
	}
	return h.hi
}
