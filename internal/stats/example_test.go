package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// Sample accumulates observations streaming-fashion; the campaign uses it
// for per-point confidence intervals.
func ExampleSample() {
	var s stats.Sample
	for _, x := range []float64{0.72, 0.74, 0.73, 0.75, 0.71} {
		s.Add(x)
	}
	fmt.Printf("mean=%.3f n=%d ci95>0=%v\n", s.Mean(), s.N(), s.CI95() > 0)
	// Output: mean=0.730 n=5 ci95>0=true
}

// Histograms feed the latency quantiles (TD50/TD95) of PointMeasure.
func ExampleHistogram() {
	h, _ := stats.NewHistogram(0, 10, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i%100) / 10) // uniform over [0, 10)
	}
	fmt.Printf("count=%d median≈%.1f\n", h.Count(), h.Quantile(0.5))
	// Output: count=1000 median≈5.0
}
