package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 {
		t.Fatal("zero-value sample not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if s.CI95() <= 0 {
		t.Fatal("CI95 must be positive for n >= 2")
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSampleMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var s Sample
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		s.Add(xs[i])
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var variance float64
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs) - 1)
	if math.Abs(s.Mean()-mean) > 1e-9 {
		t.Fatalf("streaming mean %v vs two-pass %v", s.Mean(), mean)
	}
	if math.Abs(s.Variance()-variance) > 1e-9 {
		t.Fatalf("streaming variance %v vs two-pass %v", s.Variance(), variance)
	}
}

func TestCI95Coverage(t *testing.T) {
	// Empirical check: the 95% CI of the mean of N(0,1) samples covers 0
	// about 95% of the time.
	rng := rand.New(rand.NewSource(2))
	const trials = 800
	covered := 0
	for trial := 0; trial < trials; trial++ {
		var s Sample
		for i := 0; i < 20; i++ {
			s.Add(rng.NormFloat64())
		}
		if math.Abs(s.Mean()) <= s.CI95() {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.92 || rate > 0.98 {
		t.Fatalf("CI coverage %v, want ≈ 0.95", rate)
	}
}

func TestTCritical(t *testing.T) {
	if !math.IsInf(tCritical95(0), 1) {
		t.Fatal("df=0 must be infinite")
	}
	if tCritical95(1) != 12.706 {
		t.Fatal("df=1 wrong")
	}
	if tCritical95(1000) != 1.960 {
		t.Fatal("large df must approach the normal value")
	}
	// Monotone decreasing.
	prev := math.Inf(1)
	for df := 1; df < 200; df++ {
		cur := tCritical95(df)
		if cur > prev {
			t.Fatalf("t-critical increased at df=%d", df)
		}
		prev = cur
	}
}

func TestHistogram(t *testing.T) {
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Fatal("accepted empty range")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("accepted zero bins")
	}
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	if h.Count() != 100 || h.NumBins() != 10 {
		t.Fatalf("count=%d bins=%d", h.Count(), h.NumBins())
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 10 {
			t.Fatalf("bin %d = %d, want 10", i, h.Bin(i))
		}
	}
	// Clamping.
	h.Add(-5)
	h.Add(99)
	if h.Bin(0) != 11 || h.Bin(9) != 11 {
		t.Fatal("out-of-range values not clamped to edge bins")
	}
	// Median of a uniform [0,10) histogram ≈ 5.
	if q := h.Quantile(0.5); q < 4 || q > 6 {
		t.Fatalf("median %v, want ≈ 5", q)
	}
	if h.Quantile(-1) > h.Quantile(2) {
		t.Fatal("clamped quantiles out of order")
	}
	empty, _ := NewHistogram(0, 1, 2)
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, _ := NewHistogram(0, 10, 5)
	b, _ := NewHistogram(0, 10, 5)
	a.Add(1)
	b.Add(1)
	b.Add(9)
	a.Merge(b)
	if a.Count() != 3 || a.Bin(0) != 2 || a.Bin(4) != 1 {
		t.Fatalf("merge wrong: count=%d bins=[%d..%d]", a.Count(), a.Bin(0), a.Bin(4))
	}
	a.Merge(nil) // no-op
	if a.Count() != 3 {
		t.Fatal("nil merge changed the histogram")
	}
	mismatched, _ := NewHistogram(0, 5, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched merge did not panic")
		}
	}()
	a.Merge(mismatched)
}

// Property: mean lies within [min, max] and variance is non-negative for
// any input sequence.
func TestPropertySampleBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true // skip inputs whose squares overflow float64
			}
			s.Add(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if s.N() == 0 {
			return true
		}
		return s.Mean() >= lo-1e-9 && s.Mean() <= hi+1e-9 && s.Variance() >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
