package dsss

import "repro/internal/metrics"

// PhyMetrics is the DSSS receive path's telemetry handle set. All fields
// are plain instrument handles; a nil *PhyMetrics (the default) keeps the
// receive path entirely uninstrumented at the cost of one pointer check.
type PhyMetrics struct {
	// SyncAttempts counts correlation searches over candidate codes
	// (one per Synchronize call inside ReceiveScan).
	SyncAttempts *metrics.Counter
	// SyncMisses counts searches where no candidate code crossed the
	// correlation threshold τ.
	SyncMisses *metrics.Counter
	// DecodeErrors counts Reed–Solomon decode failures (erasure budget
	// exceeded, miscorrection caught by the sync word, or packing errors).
	DecodeErrors *metrics.Counter
	// DecodeOK counts frames recovered end to end.
	DecodeOK *metrics.Counter
	// ErasureSymbols counts coded symbols fed to the RS decoder as
	// erasures (correlation below τ on at least one of the symbol's bits).
	ErasureSymbols *metrics.Counter
}

// NewPhyMetrics registers the standard DSSS receive-path instruments on
// reg. A nil registry yields a fully inert (but non-nil) handle set.
func NewPhyMetrics(reg *metrics.Registry) *PhyMetrics {
	return &PhyMetrics{
		SyncAttempts: reg.Counter("jrsnd_dsss_sync_attempts_total",
			"sliding-window correlation searches over candidate codes"),
		SyncMisses: reg.Counter("jrsnd_dsss_sync_misses_total",
			"correlation searches with no code beyond the threshold τ"),
		DecodeErrors: reg.Counter("jrsnd_dsss_rs_decode_errors_total",
			"Reed–Solomon frame decode failures"),
		DecodeOK: reg.Counter("jrsnd_dsss_rs_decode_ok_total",
			"frames recovered by the RS + sync-word pipeline"),
		ErasureSymbols: reg.Counter("jrsnd_dsss_rs_erasure_symbols_total",
			"coded symbols handed to the RS decoder as erasures"),
	}
}

// Instrument attaches m to the framer; pass nil to detach.
func (f *Frame) Instrument(m *PhyMetrics) { f.m = m }
