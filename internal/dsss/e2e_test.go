package dsss

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/chips"
	"repro/internal/ibc"
)

// End-to-end chip-level D-NDP: the four-message §V-B exchange carried out
// entirely at the PHY — real spread codes, real frames, real correlation
// receivers, and a chip-level reactive jammer — culminating in both
// endpoints deriving the same session spread code. This validates the
// message-level abstraction used by the campaign simulator against the
// physical layer it stands for.

const (
	e2eChipLen = 256 // smaller than 512 to keep the sliding scans fast
	e2eTau     = 0.15
	e2eMu      = 1.0
)

// chipJammer is a reactive jammer at chip fidelity: for every frame spread
// with a code it knows, it identifies the code during the first 1/(1+μ)
// fraction and inverts the remainder — destroying more than the ECC budget.
type chipJammer struct {
	known []chips.Sequence
}

func (j *chipJammer) knows(code chips.Sequence) bool {
	for _, k := range j.known {
		if k.Equal(code) {
			return true
		}
	}
	return false
}

// attack jams the frame on the channel if its code is known.
func (j *chipJammer) attack(ch *Channel, frame chips.Sequence, off int, code chips.Sequence) {
	if !j.knows(code) {
		return
	}
	identifyBy := int(float64(frame.Len()) / (1 + e2eMu) * 0.9) // identified in time
	ch.AddInverted(frame.Slice(identifyBy, frame.Len()), off+identifyBy)
}

// transmitFrame puts an RS-coded spread frame on a fresh channel and lets
// the jammer react.
func transmitFrame(t *testing.T, frame *Frame, jam *chipJammer, msg []byte, code chips.Sequence, off int) *Channel {
	t.Helper()
	sig, err := frame.Transmit(msg, code)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(off + sig.Len() + 200)
	if err != nil {
		t.Fatal(err)
	}
	ch.Add(sig, off)
	jam.attack(ch, sig, off, code)
	return ch
}

func TestChipLevelDNDPEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	frame, err := NewFrame(e2eMu, e2eTau)
	if err != nil {
		t.Fatal(err)
	}

	// The authority: ID-based keys for A and B plus three pool codes —
	// one shared (clean), one shared (compromised), one B-only.
	auth, err := ibc.NewAuthority(ibc.AuthorityConfig{Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	keyA, err := auth.Issue(10, rng)
	if err != nil {
		t.Fatal(err)
	}
	keyB, err := auth.Issue(20, rng)
	if err != nil {
		t.Fatal(err)
	}
	sharedClean := chips.NewRandom(rng, e2eChipLen)
	sharedDirty := chips.NewRandom(rng, e2eChipLen)
	bOnly := chips.NewRandom(rng, e2eChipLen)
	codesA := []chips.Sequence{sharedClean, sharedDirty}
	codesB := []chips.Sequence{sharedClean, sharedDirty, bOnly}
	jam := &chipJammer{known: []chips.Sequence{sharedDirty}}

	// --- Message 1: A broadcasts HELLO on each of its codes. B scans with
	// its own code set and must recover the copy on the clean shared code.
	hello := []byte{0x01, 10} // {HELLO, ID_A}
	decodedOn := -1
	for _, code := range codesA {
		ch := transmitFrame(t, frame, jam, hello, code, 300)
		got, idx, _, err := frame.ReceiveScan(ch.Samples(), codesB, len(hello))
		if err != nil {
			continue // jammed copy
		}
		if !bytes.Equal(got, hello) {
			t.Fatalf("corrupted HELLO decode: %v", got)
		}
		decodedOn = idx
	}
	if decodedOn != 0 {
		t.Fatalf("HELLO decoded with code %d, want the clean shared code (0)", decodedOn)
	}
	// The copy on the compromised code must NOT decode.
	chDirty := transmitFrame(t, frame, jam, hello, sharedDirty, 100)
	if _, _, _, err := frame.ReceiveScan(chDirty.Samples(), []chips.Sequence{sharedDirty}, len(hello)); err == nil {
		t.Fatal("jammed HELLO decoded despite >μ/(1+μ) corruption")
	}

	// --- Message 2: B CONFIRMs on the code the HELLO arrived on.
	confirm := []byte{0x02, 20} // {CONFIRM, ID_B}
	ch2 := transmitFrame(t, frame, jam, confirm, sharedClean, 500)
	got2, _, _, err := frame.ReceiveScan(ch2.Samples(), codesA, len(confirm))
	if err != nil {
		t.Fatalf("A failed to receive CONFIRM: %v", err)
	}
	if !bytes.Equal(got2, confirm) {
		t.Fatal("CONFIRM corrupted")
	}

	// --- Message 3: A → B {ID_A, n_A, f_K(ID_A|n_A)}.
	kAB := keyA.SharedKey(20)
	nA := []byte{0xAA, 0xBB, 0x01}
	macA := ibc.MAC(kAB, 20, []byte{0, 10}, nA)
	msg3 := append(append([]byte{0, 10}, nA...), macA...)
	ch3 := transmitFrame(t, frame, jam, msg3, sharedClean, 700)
	got3, _, _, err := frame.ReceiveScan(ch3.Samples(), codesB, len(msg3))
	if err != nil {
		t.Fatalf("B failed to receive AUTH1: %v", err)
	}
	kBA := keyB.SharedKey(10)
	rxNA := got3[2:5]
	if !ibc.VerifyMAC(kBA, got3[5:], got3[:2], rxNA) {
		t.Fatal("B rejected a genuine AUTH1 MAC")
	}

	// --- Message 4: B → A {ID_B, n_B, f_K(ID_B|n_B)}.
	nB := []byte{0xCC, 0xDD, 0x02}
	macB := ibc.MAC(kBA, 20, []byte{0, 20}, nB)
	msg4 := append(append([]byte{0, 20}, nB...), macB...)
	ch4 := transmitFrame(t, frame, jam, msg4, sharedClean, 900)
	got4, _, _, err := frame.ReceiveScan(ch4.Samples(), codesA, len(msg4))
	if err != nil {
		t.Fatalf("A failed to receive AUTH2: %v", err)
	}
	rxNB := got4[2:5]
	if !ibc.VerifyMAC(kAB, got4[5:], got4[:2], rxNB) {
		t.Fatal("A rejected a genuine AUTH2 MAC")
	}

	// --- Both endpoints derive the session spread code C_AB = h_K(n_A⊗n_B).
	sessA, err := ibc.SessionCode(kAB, nA, rxNB, e2eChipLen)
	if err != nil {
		t.Fatal(err)
	}
	sessB, err := ibc.SessionCode(kBA, rxNA, nB, e2eChipLen)
	if err != nil {
		t.Fatal(err)
	}
	if !sessA.Equal(sessB) {
		t.Fatal("endpoints derived different session spread codes")
	}

	// --- The session code is unjammable: the jammer does not know it, so
	// a frame spread with it sails through, and inverting a random wrong
	// guess does nothing.
	sessionMsg := []byte("over session code")
	ch5 := transmitFrame(t, frame, jam, sessionMsg, sessA, 400)
	// Jammer guesses a random code and jams with it anyway.
	guess := chips.NewRandom(rng, e2eChipLen)
	wrongJam, err := Spread(BytesToBits(make([]byte, len(sessionMsg)*2)), guess)
	if err != nil {
		t.Fatal(err)
	}
	ch5.AddInverted(wrongJam, 400)
	got5, _, _, err := frame.ReceiveScan(ch5.Samples(), []chips.Sequence{sessB}, len(sessionMsg))
	if err != nil {
		t.Fatalf("session-code frame lost to a guessing jammer: %v", err)
	}
	if !bytes.Equal(got5, sessionMsg) {
		t.Fatal("session-code frame corrupted")
	}
}
