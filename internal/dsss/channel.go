package dsss

import (
	"fmt"
	"math/rand"

	"repro/internal/chips"
)

// Channel is a chip-level shared-medium model: every concurrent signal
// (legitimate transmission or jamming) contributes ±1 per chip, and the
// receiver samples the signed sum. This is the superposition abstraction
// under which the paper's correlation arguments operate: a signal spread
// with an independent code adds ≈N(0, k/N) noise to the correlation with
// the target code, negligible for N = 512, while a jamming signal using
// the *same* code aligned to the transmission shifts the correlation by
// ±1 and can flip or erase bits.
type Channel struct {
	buf []int32
}

// NewChannel creates a channel timeline of the given length in chips.
func NewChannel(lengthChips int) (*Channel, error) {
	if lengthChips <= 0 {
		return nil, fmt.Errorf("dsss: channel length %d must be positive", lengthChips)
	}
	return &Channel{buf: make([]int32, lengthChips)}, nil
}

// Len returns the timeline length in chips.
func (c *Channel) Len() int { return len(c.buf) }

// Add superimposes a signal starting at chip offset off. Portions falling
// outside the timeline are clipped.
func (c *Channel) Add(signal chips.Sequence, off int) {
	for i := 0; i < signal.Len(); i++ {
		pos := off + i
		if pos < 0 || pos >= len(c.buf) {
			continue
		}
		c.buf[pos] += int32(signal.At(i))
	}
}

// AddInverted superimposes the chip-wise inverse of signal at off — the
// strongest jamming waveform against a known transmission, driving the
// correlation toward −1.
func (c *Channel) AddInverted(signal chips.Sequence, off int) {
	c.Add(signal.Invert(), off)
}

// AddNoise adds independent ±amplitude noise chips over [off, off+length).
func (c *Channel) AddNoise(rng *rand.Rand, off, length int, amplitude int32) {
	for i := 0; i < length; i++ {
		pos := off + i
		if pos < 0 || pos >= len(c.buf) {
			continue
		}
		if rng.Intn(2) == 0 {
			c.buf[pos] += amplitude
		} else {
			c.buf[pos] -= amplitude
		}
	}
}

// Samples returns the receiver's view of the channel (the live buffer; the
// caller must not modify it).
func (c *Channel) Samples() []int32 { return c.buf }

// SyncResult describes a message located by sliding-window synchronization.
type SyncResult struct {
	CodeIndex int // which of the candidate codes matched
	Offset    int // chip offset of the first message bit
	FirstCorr float64
}

// Synchronize implements the receiver algorithm of §V-B: scan every chip
// offset of the buffered signal, correlating the N-chip window against each
// candidate spread code, and lock onto the earliest offset whose
// correlation magnitude reaches τ. The caller then de-spreads the rest of
// the message from that offset with the matched code (DespreadAt).
func Synchronize(buf []int32, codes []chips.Sequence, tau float64, msgBits int) (SyncResult, error) {
	if len(codes) == 0 {
		return SyncResult{}, fmt.Errorf("dsss: no candidate codes")
	}
	if tau <= 0 || tau >= 1 {
		return SyncResult{}, fmt.Errorf("dsss: threshold τ=%v must be in (0,1)", tau)
	}
	n := codes[0].Len()
	for _, c := range codes {
		if c.Len() != n {
			return SyncResult{}, fmt.Errorf("dsss: candidate codes have mixed lengths")
		}
	}
	// Only offsets that leave room for the whole message can host its
	// start (footnote 1 of the paper).
	last := len(buf) - msgBits*n
	if res, ok := scanForSignal(buf, codes, tau, last); ok {
		return res, nil
	}
	return SyncResult{}, ErrNoSignal
}

// scanForSignal is the sliding-window correlation kernel: every chip
// offset in [0, last] is correlated against every candidate code until
// one reaches the threshold. This inner loop runs len(buf)×len(codes)
// correlations per synchronization attempt and must stay allocation-free.
//
//jrsnd:hotpath
func scanForSignal(buf []int32, codes []chips.Sequence, tau float64, last int) (SyncResult, bool) {
	for off := 0; off <= last; off++ {
		for ci := range codes {
			corr := chips.CorrelateAt(codes[ci], buf, off)
			if corr >= tau || corr <= -tau {
				return SyncResult{CodeIndex: ci, Offset: off, FirstCorr: corr}, true
			}
		}
	}
	return SyncResult{}, false
}
