package dsss

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chips"
)

const (
	testChipLen = 512
	testTau     = 0.15
)

func TestBytesBitsRoundTrip(t *testing.T) {
	data := []byte{0x00, 0xFF, 0xA5, 0x3C}
	bits := BytesToBits(data)
	if len(bits) != 32 {
		t.Fatalf("bit count = %d, want 32", len(bits))
	}
	back, err := BitsToBytes(bits)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("round trip mismatch")
	}
	if _, err := BitsToBytes(bits[:7]); err == nil {
		t.Fatal("accepted non-multiple-of-8 bit count")
	}
	bits[3] = Erased
	if _, err := BitsToBytes(bits); err == nil {
		t.Fatal("accepted erased bit")
	}
}

func TestSpreadDespreadCleanChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	code := chips.NewRandom(rng, testChipLen)
	msgBits := BytesToBits([]byte{0xDE, 0xAD, 0xBE, 0xEF})
	signal, err := Spread(msgBits, code)
	if err != nil {
		t.Fatal(err)
	}
	if signal.Len() != len(msgBits)*testChipLen {
		t.Fatalf("signal length = %d, want %d", signal.Len(), len(msgBits)*testChipLen)
	}
	ch, err := NewChannel(signal.Len())
	if err != nil {
		t.Fatal(err)
	}
	ch.Add(signal, 0)
	bits, erasures, err := DespreadAt(ch.Samples(), 0, code, testTau, len(msgBits))
	if err != nil {
		t.Fatal(err)
	}
	if len(erasures) != 0 {
		t.Fatalf("clean channel produced %d erasures", len(erasures))
	}
	for i := range msgBits {
		if bits[i] != msgBits[i] {
			t.Fatalf("bit %d = %d, want %d", i, bits[i], msgBits[i])
		}
	}
}

func TestSpreadValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	code := chips.NewRandom(rng, 64)
	if _, err := Spread(nil, code); err == nil {
		t.Fatal("accepted empty message")
	}
	if _, err := Spread([]byte{1}, chips.Sequence{}); err == nil {
		t.Fatal("accepted empty code")
	}
	if _, err := Spread([]byte{2}, code); err == nil {
		t.Fatal("accepted invalid bit value")
	}
}

func TestDespreadWrongCodeErases(t *testing.T) {
	// De-spreading with an independent code must stay below τ (bits come
	// back erased, not silently wrong) with overwhelming probability.
	rng := rand.New(rand.NewSource(3))
	code := chips.NewRandom(rng, testChipLen)
	wrong := chips.NewRandom(rng, testChipLen)
	msgBits := BytesToBits([]byte{0x5A, 0x5A, 0x5A, 0x5A})
	signal, err := Spread(msgBits, code)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := NewChannel(signal.Len())
	ch.Add(signal, 0)
	bits, erasures, err := DespreadAt(ch.Samples(), 0, wrong, testTau, len(msgBits))
	if err != nil {
		t.Fatal(err)
	}
	if len(erasures) != len(bits) {
		t.Fatalf("wrong code decoded %d/%d bits confidently; want all erased",
			len(bits)-len(erasures), len(bits))
	}
}

func TestConcurrentIndependentTransmissionsCoexist(t *testing.T) {
	// §IV-A: concurrent transmissions with different pseudorandom codes
	// interfere negligibly at N = 512.
	rng := rand.New(rand.NewSource(4))
	codeA := chips.NewRandom(rng, testChipLen)
	codeB := chips.NewRandom(rng, testChipLen)
	msgA := BytesToBits([]byte{0x11, 0x22})
	msgB := BytesToBits([]byte{0xEE, 0xDD})
	sigA, _ := Spread(msgA, codeA)
	sigB, _ := Spread(msgB, codeB)
	ch, _ := NewChannel(sigA.Len())
	ch.Add(sigA, 0)
	ch.Add(sigB, 0)
	bitsA, erasA, err := DespreadAt(ch.Samples(), 0, codeA, testTau, len(msgA))
	if err != nil {
		t.Fatal(err)
	}
	bitsB, erasB, err := DespreadAt(ch.Samples(), 0, codeB, testTau, len(msgB))
	if err != nil {
		t.Fatal(err)
	}
	if len(erasA) > 1 || len(erasB) > 1 {
		t.Fatalf("cross-interference erased %d+%d bits", len(erasA), len(erasB))
	}
	for i := range msgA {
		if bitsA[i] != Erased && bitsA[i] != msgA[i] {
			t.Fatalf("A bit %d flipped", i)
		}
		if bitsB[i] != Erased && bitsB[i] != msgB[i] {
			t.Fatalf("B bit %d flipped", i)
		}
	}
}

func TestSameCodeJammingDestroysBits(t *testing.T) {
	// A reactive jammer that knows the code and alignment inverts the
	// signal, erasing every chip (sum = 0 → correlation 0 < τ).
	rng := rand.New(rand.NewSource(5))
	code := chips.NewRandom(rng, testChipLen)
	msg := BytesToBits([]byte{0xAB, 0xCD})
	sig, _ := Spread(msg, code)
	ch, _ := NewChannel(sig.Len())
	ch.Add(sig, 0)
	ch.AddInverted(sig, 0)
	_, erasures, err := DespreadAt(ch.Samples(), 0, code, testTau, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if len(erasures) != len(msg) {
		t.Fatalf("aligned same-code jamming erased only %d/%d bits", len(erasures), len(msg))
	}
}

func TestSynchronizeFindsOffsetAndCode(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	codes := make([]chips.Sequence, 5)
	for i := range codes {
		codes[i] = chips.NewRandom(rng, testChipLen)
	}
	msg := BytesToBits([]byte{0xF0, 0x0F})
	const off = 777
	sig, _ := Spread(msg, codes[3])
	ch, _ := NewChannel(off + sig.Len() + 100)
	ch.Add(sig, off)
	res, err := Synchronize(ch.Samples(), codes, testTau, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if res.CodeIndex != 3 {
		t.Fatalf("CodeIndex = %d, want 3", res.CodeIndex)
	}
	if res.Offset != off {
		t.Fatalf("Offset = %d, want %d", res.Offset, off)
	}
	bits, erasures, err := DespreadAt(ch.Samples(), res.Offset, codes[res.CodeIndex], testTau, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if len(erasures) != 0 {
		t.Fatalf("%d erasures after sync", len(erasures))
	}
	for i := range msg {
		if bits[i] != msg[i] {
			t.Fatalf("bit %d mismatch after sync", i)
		}
	}
}

func TestSynchronizeNoSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	codes := []chips.Sequence{chips.NewRandom(rng, testChipLen)}
	// A silent channel never synchronizes.
	ch, _ := NewChannel(4 * testChipLen)
	if _, err := Synchronize(ch.Samples(), codes, testTau, 2); !errors.Is(err, ErrNoSignal) {
		t.Fatalf("silent channel: err = %v, want ErrNoSignal", err)
	}
	// A foreign transmission (unknown code) must not synchronize either;
	// use a raised threshold to keep the scan's false-positive probability
	// negligible across all offsets.
	foreign, _ := Spread(BytesToBits([]byte{0xAA, 0x55}), chips.NewRandom(rng, testChipLen))
	ch2, _ := NewChannel(foreign.Len())
	ch2.Add(foreign, 0)
	if _, err := Synchronize(ch2.Samples(), codes, 0.4, 2); !errors.Is(err, ErrNoSignal) {
		t.Fatalf("foreign signal: err = %v, want ErrNoSignal", err)
	}
}

func TestSynchronizeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	buf := make([]int32, 1024)
	if _, err := Synchronize(buf, nil, testTau, 1); err == nil {
		t.Fatal("accepted empty code list")
	}
	codes := []chips.Sequence{chips.NewRandom(rng, 512), chips.NewRandom(rng, 256)}
	if _, err := Synchronize(buf, codes, testTau, 1); err == nil {
		t.Fatal("accepted mixed code lengths")
	}
	if _, err := Synchronize(buf, codes[:1], 0, 1); err == nil {
		t.Fatal("accepted τ=0")
	}
}

func TestDespreadValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	code := chips.NewRandom(rng, 64)
	buf := make([]int32, 640)
	if _, _, err := DespreadAt(buf, 0, chips.Sequence{}, testTau, 1); err == nil {
		t.Fatal("accepted empty code")
	}
	if _, _, err := DespreadAt(buf, 0, code, 1.5, 1); err == nil {
		t.Fatal("accepted τ>=1")
	}
	if _, _, err := DespreadAt(buf, 600, code, testTau, 2); err == nil {
		t.Fatal("accepted out-of-range window")
	}
}

func TestFrameEndToEndClean(t *testing.T) {
	frame, err := NewFrame(1.0, testTau)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	code := chips.NewRandom(rng, testChipLen)
	msg := []byte{0x01, 0x23, 0x45} // HELLO-sized: l_t+l_id ≈ 21 bits
	sig, err := frame.Transmit(msg, code)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Len() != frame.AirtimeChips(len(msg), testChipLen) {
		t.Fatalf("airtime = %d chips, want %d", sig.Len(), frame.AirtimeChips(len(msg), testChipLen))
	}
	ch, _ := NewChannel(sig.Len())
	ch.Add(sig, 0)
	got, err := frame.Receive(ch.Samples(), 0, code, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("frame round trip mismatch")
	}
}

func TestFrameSurvivesPartialJamming(t *testing.T) {
	// Jam just under μ/(1+μ) = 1/2 of the frame with the correct code:
	// the RS erasure budget absorbs it.
	frame, err := NewFrame(1.0, testTau)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	code := chips.NewRandom(rng, testChipLen)
	msg := make([]byte, 40)
	rng.Read(msg)
	sig, _ := frame.Transmit(msg, code)
	ch, _ := NewChannel(sig.Len())
	ch.Add(sig, 0)
	// Invert a prefix burst of just under half the coded symbols, byte
	// aligned so the erasure budget is respected exactly.
	codec := frame.Codec()
	jamBytes := len(sig.Signs())/(8*testChipLen)*codec.BlockCode().Parity()/codec.BlockCode().N() - 1
	jamChips := jamBytes * 8 * testChipLen
	ch.AddInverted(sig.Slice(0, jamChips), 0)
	got, err := frame.Receive(ch.Samples(), 0, code, len(msg))
	if err != nil {
		t.Fatalf("frame lost under sub-budget jamming: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("frame corrupted under sub-budget jamming")
	}
}

func TestFrameDiesUnderFullJamming(t *testing.T) {
	frame, _ := NewFrame(1.0, testTau)
	rng := rand.New(rand.NewSource(12))
	code := chips.NewRandom(rng, testChipLen)
	msg := make([]byte, 20)
	rng.Read(msg)
	sig, _ := frame.Transmit(msg, code)
	ch, _ := NewChannel(sig.Len())
	ch.Add(sig, 0)
	ch.AddInverted(sig, 0) // full-frame reactive jam
	if _, err := frame.Receive(ch.Samples(), 0, code, len(msg)); err == nil {
		t.Fatal("frame decoded despite full-frame same-code jamming")
	}
}

func TestReceiveScanLocksPastForeignTraffic(t *testing.T) {
	// A foreign-code transmission earlier in the buffer can trip raw
	// synchronization; ReceiveScan must skip it and decode the real frame.
	frame, err := NewFrame(1.0, testTau)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20))
	code := chips.NewRandom(rng, testChipLen)
	foreign := chips.NewRandom(rng, testChipLen)
	msg := []byte("HELLO:A")
	const off = 700
	sig, err := frame.Transmit(msg, code)
	if err != nil {
		t.Fatal(err)
	}
	noise, err := frame.Transmit([]byte("NOISE-NEIGHBOR"), foreign)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := NewChannel(off + sig.Len() + 500)
	ch.Add(noise, 0)
	ch.Add(sig, off)
	got, codeIdx, lockedAt, err := frame.ReceiveScan(ch.Samples(), []chips.Sequence{code}, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) || codeIdx != 0 {
		t.Fatalf("got %q (code %d), want %q (code 0)", got, codeIdx, msg)
	}
	if lockedAt != off {
		t.Fatalf("locked at %d, want %d", lockedAt, off)
	}
}

func TestReceiveScanNoFrame(t *testing.T) {
	frame, _ := NewFrame(1.0, testTau)
	rng := rand.New(rand.NewSource(21))
	code := chips.NewRandom(rng, testChipLen)
	buf := make([]int32, 20*testChipLen)
	if _, _, _, err := frame.ReceiveScan(buf, []chips.Sequence{code}, 4); !errors.Is(err, ErrNoSignal) {
		t.Fatalf("err = %v, want ErrNoSignal", err)
	}
	if _, _, _, err := frame.ReceiveScan(buf, nil, 4); err == nil {
		t.Fatal("accepted empty code list")
	}
}

func TestChannelValidation(t *testing.T) {
	if _, err := NewChannel(0); err == nil {
		t.Fatal("accepted zero-length channel")
	}
}

func TestChannelClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sig := chips.NewRandom(rng, 100)
	ch, _ := NewChannel(50)
	ch.Add(sig, -25) // half before, half inside
	ch.Add(sig, 40)  // runs past the end
	// No panic and the buffer stays the declared length.
	if ch.Len() != 50 {
		t.Fatalf("Len = %d, want 50", ch.Len())
	}
}

// Property: frame round trip survives any random erasure pattern within
// the per-frame budget, for random messages and codes.
func TestPropertyFrameJammingWithinBudget(t *testing.T) {
	frame, err := NewFrame(1.0, testTau)
	if err != nil {
		t.Fatal(err)
	}
	const chipLen = 128 // smaller chips keep the property test fast
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		code := chips.NewRandom(rng, chipLen)
		msg := make([]byte, 8+rng.Intn(32))
		rng.Read(msg)
		sig, err := frame.Transmit(msg, code)
		if err != nil {
			return false
		}
		ch, err := NewChannel(sig.Len())
		if err != nil {
			return false
		}
		ch.Add(sig, 0)
		// Jam a random set of whole coded bytes within the budget.
		codec := frame.Codec()
		codedBytes := frame.EncodedBits(len(msg)) / 8
		budget := codedBytes*codec.BlockCode().Parity()/codec.BlockCode().N() - 1
		if budget < 0 {
			budget = 0
		}
		count := rng.Intn(budget + 1)
		for _, b := range rng.Perm(codedBytes)[:count] {
			from, to := b*8*chipLen, (b+1)*8*chipLen
			ch.AddInverted(sig.Slice(from, to), from)
		}
		got, err := frame.Receive(ch.Samples(), 0, code, len(msg))
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
