package dsss

import (
	"fmt"

	"repro/internal/chips"
	"repro/internal/rs"
	"repro/internal/trace"
)

// Frame is the complete §V-B message path: Reed–Solomon expansion by the
// factor (1+μ) followed by DSSS spreading on transmit, and sliding-window
// de-spreading with erasure-aware RS decoding on receive. A jammer must
// corrupt more than the μ/(1+μ) fraction of the coded symbols — using the
// correct spread code — to destroy a frame.
//
// Every frame carries a two-byte sync word ahead of the payload. RS
// erasure decoding at the full budget has no verification margin (any
// word with exactly `parity` erasures solves), so a scan over garbage
// offsets could otherwise "decode" noise; the sync word rejects such
// miscorrections with probability 1 − 2^{-16}.
type Frame struct {
	codec    *rs.Codec
	tau      float64
	m        *PhyMetrics   // nil unless Instrument was called
	tracer   *trace.Tracer // nil unless Trace was called
	chipRate float64       // chips per second for span timestamps
}

// frameMagic is the two-byte sync word prepended to every frame payload.
var frameMagic = [2]byte{0xA7, 0x5C}

// NewFrame builds a framer with ECC expansion μ and de-spread threshold τ.
func NewFrame(mu, tau float64) (*Frame, error) {
	if tau <= 0 || tau >= 1 {
		return nil, fmt.Errorf("dsss: threshold τ=%v must be in (0,1)", tau)
	}
	codec, err := rs.NewCodec(mu)
	if err != nil {
		return nil, err
	}
	return &Frame{codec: codec, tau: tau}, nil
}

// Codec exposes the underlying RS codec.
func (f *Frame) Codec() *rs.Codec { return f.codec }

// EncodedBits returns the number of coded bits for a msgLen-byte message
// (including the frame sync word).
func (f *Frame) EncodedBits(msgLen int) int {
	return 8 * f.codec.EncodedLen(msgLen+len(frameMagic))
}

// AirtimeChips returns the frame's length on the air in chips for an
// N-chip spread code.
func (f *Frame) AirtimeChips(msgLen, chipLen int) int {
	return f.EncodedBits(msgLen) * chipLen
}

// Transmit RS-encodes msg (with the sync word prepended) and spreads it
// with code, returning the chip sequence to put on the channel.
func (f *Frame) Transmit(msg []byte, code chips.Sequence) (chips.Sequence, error) {
	if len(msg) == 0 {
		return chips.Sequence{}, fmt.Errorf("frame encode: %w", rs.ErrEmptyMessage)
	}
	framed := append(frameMagic[:], msg...)
	coded, err := f.codec.Encode(framed)
	if err != nil {
		return chips.Sequence{}, fmt.Errorf("frame encode: %w", err)
	}
	return Spread(BytesToBits(coded), code)
}

// ReceiveScan implements the full receiver of §V-B: slide over the buffer
// looking for a chip offset whose leading window correlates with one of
// the candidate codes beyond τ, attempt a complete de-spread + RS decode
// there, and on failure keep scanning (false synchronization on foreign
// traffic or jamming residue is expected and survivable). It returns the
// decoded message, the matched code index, and the frame's chip offset.
func (f *Frame) ReceiveScan(buf []int32, codes []chips.Sequence, msgLen int) (msg []byte, codeIdx, offset int, err error) {
	if len(codes) == 0 {
		return nil, 0, 0, fmt.Errorf("dsss: no candidate codes")
	}
	n := codes[0].Len()
	frameChips := f.EncodedBits(msgLen) * n
	start := 0
	for {
		window := buf[start:]
		if f.m != nil {
			f.m.SyncAttempts.Inc()
		}
		sync := trace.SpanID(0)
		if f.tracer != nil {
			sync = f.tracer.Start(f.chipTime(start), 0, -1, -1, "dsss.sync_window")
		}
		res, serr := Synchronize(window, codes, f.tau, f.EncodedBits(msgLen))
		if serr != nil {
			if f.m != nil {
				f.m.SyncMisses.Inc()
			}
			if f.tracer != nil {
				f.tracer.End(f.chipTime(len(buf)), sync, -1, -1, "no signal")
			}
			return nil, 0, 0, ErrNoSignal
		}
		off := start + res.Offset
		if f.tracer != nil {
			f.tracer.End(f.chipTime(off), sync, -1, -1, fmt.Sprintf("locked code=%d", res.CodeIndex))
		}
		if off+frameChips > len(buf) {
			return nil, 0, 0, ErrNoSignal
		}
		despread := trace.SpanID(0)
		if f.tracer != nil {
			despread = f.tracer.Start(f.chipTime(off), sync, -1, -1, "dsss.despread")
		}
		endDespread := func(detail string) {
			if f.tracer != nil {
				f.tracer.End(f.chipTime(off+frameChips), despread, -1, -1, detail)
			}
		}
		// A sync hit locates a plausible frame start, but the code that
		// tripped the threshold may be a chance correlator of another
		// candidate (≈1.6% per code at N=256). Try the matched code
		// first, then every other candidate, before advancing — otherwise
		// a false lock at the true offset would skip the real frame.
		if m, derr := f.Receive(buf, off, codes[res.CodeIndex], msgLen); derr == nil {
			endDespread(fmt.Sprintf("decoded code=%d", res.CodeIndex))
			return m, res.CodeIndex, off, nil
		}
		for ci := range codes {
			if ci == res.CodeIndex {
				continue
			}
			if m, derr := f.Receive(buf, off, codes[ci], msgLen); derr == nil {
				endDespread(fmt.Sprintf("decoded code=%d", ci))
				return m, ci, off, nil
			}
		}
		endDespread("all candidates failed")
		start = off + 1
	}
}

// Receive de-spreads a frame that starts at chip offset off in buf and
// RS-decodes it back to the original msgLen bytes. Bits whose correlation
// falls below τ are treated as symbol erasures.
func (f *Frame) Receive(buf []int32, off int, code chips.Sequence, msgLen int) ([]byte, error) {
	numBits := f.EncodedBits(msgLen)
	bits, bitErasures, err := DespreadAt(buf, off, code, f.tau, numBits)
	if err != nil {
		return nil, err
	}
	// A coded byte is erased if any of its bits is. Additionally, a bit
	// confidently decoded to the *wrong* value shows up as an RS symbol
	// error, which the decoder also handles (within the smaller unknown-
	// error budget).
	erasedBytes := map[int]bool{}
	for _, be := range bitErasures {
		erasedBytes[be/8] = true
		bits[be] = 0 // placeholder value for packing
	}
	coded, err := BitsToBytes(bits)
	if err != nil {
		return nil, err
	}
	erasures := make([]int, 0, len(erasedBytes))
	for pos := range erasedBytes {
		erasures = append(erasures, pos)
	}
	if f.m != nil {
		f.m.ErasureSymbols.Add(uint64(len(erasures)))
	}
	framed, err := f.codec.Decode(coded, msgLen+len(frameMagic), erasures)
	if err != nil {
		if f.m != nil {
			f.m.DecodeErrors.Inc()
		}
		return nil, fmt.Errorf("frame decode: %w", err)
	}
	if framed[0] != frameMagic[0] || framed[1] != frameMagic[1] {
		if f.m != nil {
			f.m.DecodeErrors.Inc()
		}
		return nil, fmt.Errorf("frame decode: bad sync word (miscorrection or wrong code)")
	}
	if f.m != nil {
		f.m.DecodeOK.Inc()
	}
	return framed[len(frameMagic):], nil
}
