package dsss

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/chips"
	"repro/internal/metrics"
)

// TestPhyMetrics drives the instrumented receive path through a clean
// decode, a threshold miss on an empty channel, and a jammed frame, and
// checks each instrument moved.
func TestPhyMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	frame, err := NewFrame(e2eMu, e2eTau)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	frame.Instrument(NewPhyMetrics(reg))

	code := chips.NewRandom(rng, e2eChipLen)
	msg := []byte("HELLO")
	jam := &chipJammer{}

	// 1. Clean frame: one sync attempt, one successful decode.
	ch := transmitFrame(t, frame, jam, msg, code, 40)
	got, _, _, err := frame.ReceiveScan(ch.Samples(), []chips.Sequence{code}, len(msg))
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("clean receive failed: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["jrsnd_dsss_sync_attempts_total"] == 0 {
		t.Error("sync attempts not counted")
	}
	if snap.Counters["jrsnd_dsss_rs_decode_ok_total"] != 1 {
		t.Errorf("decode ok = %d, want 1", snap.Counters["jrsnd_dsss_rs_decode_ok_total"])
	}

	// 2. Empty channel: the scan must miss the correlation threshold.
	empty, err := NewChannel(frame.AirtimeChips(len(msg), e2eChipLen) + 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := frame.ReceiveScan(empty.Samples(), []chips.Sequence{code}, len(msg)); err == nil {
		t.Fatal("decoded a frame from an empty channel")
	}
	snap = reg.Snapshot()
	if snap.Counters["jrsnd_dsss_sync_misses_total"] == 0 {
		t.Error("sync misses not counted")
	}

	// 3. Jammed frame: the reactive jammer inverts past the ECC budget, so
	// decode attempts fail and erasures/errors accumulate.
	jam.known = []chips.Sequence{code}
	jammed := transmitFrame(t, frame, jam, msg, code, 40)
	if _, _, _, err := frame.ReceiveScan(jammed.Samples(), []chips.Sequence{code}, len(msg)); err == nil {
		t.Fatal("decoded a jammed frame")
	}
	snap = reg.Snapshot()
	if snap.Counters["jrsnd_dsss_rs_decode_errors_total"] == 0 {
		t.Error("decode errors not counted")
	}
	if snap.Counters["jrsnd_dsss_rs_erasure_symbols_total"] == 0 {
		t.Error("erasure symbols not counted")
	}
}

// TestPhyMetricsUninstrumented checks the receive path stays nil-safe
// without Instrument and with a handle set from a nil registry.
func TestPhyMetricsUninstrumented(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	frame, err := NewFrame(e2eMu, e2eTau)
	if err != nil {
		t.Fatal(err)
	}
	code := chips.NewRandom(rng, e2eChipLen)
	msg := []byte("X")
	ch := transmitFrame(t, frame, &chipJammer{}, msg, code, 10)
	if _, _, _, err := frame.ReceiveScan(ch.Samples(), []chips.Sequence{code}, len(msg)); err != nil {
		t.Fatalf("uninstrumented receive failed: %v", err)
	}
	frame.Instrument(NewPhyMetrics(nil)) // inert handles must also be safe
	if _, _, _, err := frame.ReceiveScan(ch.Samples(), []chips.Sequence{code}, len(msg)); err != nil {
		t.Fatalf("inert-instrumented receive failed: %v", err)
	}
}
