package dsss

import (
	"math/rand"
	"testing"

	"repro/internal/chips"
)

// The //jrsnd:hotpath kernels promise an allocation-free steady state;
// these tests pin that promise at runtime with testing.AllocsPerRun,
// complementing the static hotpathalloc analyzer and the gcflags=-m
// cross-check in internal/lint.

func hotpathFixture(t *testing.T) (buf []int32, code chips.Sequence) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	code = chips.NewRandom(rng, testChipLen)
	msg := []byte{1, 0, 1, 1, 0, 0, 1, 0}
	sig, err := Spread(msg, code)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(sig.Len() + 2*testChipLen)
	if err != nil {
		t.Fatal(err)
	}
	ch.Add(sig, testChipLen/2)
	return ch.Samples(), code
}

func TestDespreadIntoMatchesDespreadAt(t *testing.T) {
	buf, code := hotpathFixture(t)
	const numBits = 8
	wantBits, wantErasures, err := DespreadAt(buf, testChipLen/2, code, testTau, numBits)
	if err != nil {
		t.Fatal(err)
	}
	bits := make([]byte, numBits)
	erasures := make([]int, numBits)
	count, err := DespreadInto(bits, erasures, buf, testChipLen/2, code, testTau)
	if err != nil {
		t.Fatal(err)
	}
	if string(bits) != string(wantBits) {
		t.Fatalf("bits = %v, want %v", bits, wantBits)
	}
	if count != len(wantErasures) {
		t.Fatalf("erasure count = %d, want %d", count, len(wantErasures))
	}
	for i := 0; i < count; i++ {
		if erasures[i] != wantErasures[i] {
			t.Fatalf("erasures[%d] = %d, want %d", i, erasures[i], wantErasures[i])
		}
	}
}

func TestDespreadIntoSentinels(t *testing.T) {
	buf, code := hotpathFixture(t)
	bits := make([]byte, 8)
	erasures := make([]int, 8)
	if _, err := DespreadInto(bits, erasures, buf, 0, chips.Sequence{}, testTau); err != ErrEmptyCode {
		t.Fatalf("empty code: err = %v, want ErrEmptyCode", err)
	}
	if _, err := DespreadInto(bits, erasures, buf, 0, code, 1.5); err != ErrBadThreshold {
		t.Fatalf("bad tau: err = %v, want ErrBadThreshold", err)
	}
	if _, err := DespreadInto(bits, erasures, buf, len(buf), code, testTau); err != ErrWindowRange {
		t.Fatalf("bad window: err = %v, want ErrWindowRange", err)
	}
	if _, err := DespreadInto(bits, erasures[:4], buf, 0, code, testTau); err != ErrErasureRoom {
		t.Fatalf("short scratch: err = %v, want ErrErasureRoom", err)
	}
}

func TestDespreadIntoAllocFree(t *testing.T) {
	buf, code := hotpathFixture(t)
	bits := make([]byte, 8)
	erasures := make([]int, 8)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := DespreadInto(bits, erasures, buf, testChipLen/2, code, testTau); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DespreadInto allocates %v objects per run, want 0", allocs)
	}
}

func TestScanForSignalAllocFree(t *testing.T) {
	buf, code := hotpathFixture(t)
	rng := rand.New(rand.NewSource(11))
	codes := []chips.Sequence{chips.NewRandom(rng, testChipLen), code}
	last := len(buf) - 8*testChipLen
	allocs := testing.AllocsPerRun(20, func() {
		if _, ok := scanForSignal(buf, codes, testTau, last); !ok {
			t.Fatal("scan lost the planted signal")
		}
	})
	if allocs != 0 {
		t.Fatalf("scanForSignal allocates %v objects per run, want 0", allocs)
	}
}
