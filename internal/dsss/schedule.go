package dsss

import "fmt"

// Schedule models the §V-B buffering-and-processing schedule that bridges
// the gap between receive and processing speed (λ = t_p/t_b ≫ 1): during
// every interval [i·t_p, (i+1)·t_p] the node processes the signal it
// buffered during [i·t_p − t_b, i·t_p] (deleting chips as they are
// processed) and buffers fresh signal during [(i+1)·t_p − t_b, (i+1)·t_p].
// With this schedule the buffer never holds more than t_b·R chips, and a
// sender that repeats a message for (λ+1)·t_b is guaranteed to have a
// complete copy land inside one buffering window.
type Schedule struct {
	tb float64 // buffering window length t_b (s)
	tp float64 // processing period t_p (s)
}

// NewSchedule builds a schedule; requires 0 < tb <= tp (λ >= 1).
func NewSchedule(tb, tp float64) (Schedule, error) {
	if tb <= 0 {
		return Schedule{}, fmt.Errorf("dsss: t_b=%v must be positive", tb)
	}
	if tp < tb {
		return Schedule{}, fmt.Errorf("dsss: t_p=%v must be >= t_b=%v (λ >= 1)", tp, tb)
	}
	return Schedule{tb: tb, tp: tp}, nil
}

// TB returns the buffering window length.
func (s Schedule) TB() float64 { return s.tb }

// TP returns the processing period.
func (s Schedule) TP() float64 { return s.tp }

// Lambda returns λ = t_p/t_b.
func (s Schedule) Lambda() float64 { return s.tp / s.tb }

// Buffering reports whether the receiver is buffering at time t >= 0: the
// buffering window of period i is the tail [(i+1)·t_p − t_b, (i+1)·t_p).
func (s Schedule) Buffering(t float64) bool {
	if t < 0 {
		return false
	}
	frac := t - float64(int(t/s.tp))*s.tp
	return frac >= s.tp-s.tb
}

// WindowAfter returns the first complete buffering window [start, end)
// that begins at or after t.
func (s Schedule) WindowAfter(t float64) (start, end float64) {
	if t < 0 {
		t = 0
	}
	i := int(t / s.tp)
	for {
		start = float64(i+1)*s.tp - s.tb
		if start >= t {
			return start, start + s.tb
		}
		i++
	}
}

// GuaranteedCapture returns the transmission duration that guarantees a
// complete buffering window falls inside the broadcast, no matter the
// phase offset between sender and receiver: t_p + t_b = (λ+1)·t_b — the
// §V-B repetition budget r·m·t_h.
func (s Schedule) GuaranteedCapture() float64 { return s.tp + s.tb }

// CapturesWindow reports whether a transmission spanning [start,
// start+duration) fully contains some buffering window.
func (s Schedule) CapturesWindow(start, duration float64) bool {
	_, wEnd := s.WindowAfter(start)
	return wEnd <= start+duration
}

// BufferOccupancy returns the fraction of the t_b-sized buffer in use at
// time t under the schedule, assuming processing consumes chips linearly
// over the processing period. It never exceeds 1 (the no-overflow claim of
// §V-B).
func (s Schedule) BufferOccupancy(t float64) float64 {
	if t < 0 {
		return 0
	}
	frac := t - float64(int(t/s.tp))*s.tp
	// Within a period: the previous window's chips are consumed linearly
	// over [0, t_p]; the current window's chips arrive during
	// [t_p − t_b, t_p].
	remainingOld := 1 - frac/s.tp
	if t < s.tp {
		// During the first period there is no previously buffered window.
		remainingOld = 0
	}
	var incoming float64
	if frac >= s.tp-s.tb {
		incoming = (frac - (s.tp - s.tb)) / s.tb
	}
	occ := remainingOld + incoming
	if occ > 1 {
		occ = 1 // clamp; analytically remainingOld+incoming <= 1 + t_b/t_p·ε
	}
	return occ
}
