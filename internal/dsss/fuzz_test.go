package dsss

import (
	"math/rand"
	"testing"

	"repro/internal/chips"
)

// fuzzCodes builds a fixed candidate-code set (deterministic; shared by
// every fuzz iteration). Short codes keep the sliding-window scan cheap
// enough for high iteration counts.
func fuzzCodes(n, count int) []chips.Sequence {
	rng := rand.New(rand.NewSource(1))
	codes := make([]chips.Sequence, count)
	for i := range codes {
		codes[i] = chips.NewRandom(rng, n)
	}
	return codes
}

// fuzzSamples maps fuzz bytes onto channel samples. ±1 bytes map to clean
// chips, everything else to stronger interference levels, so the fuzzer
// can express both plausible signals and garbage.
func fuzzSamples(data []byte) []int32 {
	const maxSamples = 1024 // bounds the O(len²) worst case of ReceiveScan
	if len(data) > maxSamples {
		data = data[:maxSamples]
	}
	buf := make([]int32, len(data))
	for i, b := range data {
		buf[i] = int32(int8(b))
	}
	return buf
}

// FuzzSyncWindow drives the §V-B receiver — sliding-window synchronization
// plus the full scan/de-spread/RS-decode loop — with arbitrary channel
// samples. Properties: never panic, always terminate, and any reported
// sync offset must leave room for the whole message inside the buffer.
func FuzzSyncWindow(f *testing.F) {
	const (
		chipLen = 16
		tau     = 0.5
		msgLen  = 2
	)
	codes := fuzzCodes(chipLen, 3)
	frame, err := NewFrame(0.5, tau)
	if err != nil {
		f.Fatal(err)
	}

	// Seed corpus: silence, a clean on-air frame, a truncated frame, and a
	// frame buried after garbage.
	f.Add([]byte{})
	f.Add(make([]byte, 256))
	signal, err := frame.Transmit([]byte{0xAB, 0xCD}, codes[1])
	if err != nil {
		f.Fatal(err)
	}
	onAir := make([]byte, signal.Len())
	for i := 0; i < signal.Len(); i++ {
		onAir[i] = byte(int8(signal.At(i)))
	}
	f.Add(onAir)
	f.Add(onAir[:len(onAir)/2])
	f.Add(append(make([]byte, 100), onAir...))

	f.Fuzz(func(t *testing.T, data []byte) {
		buf := fuzzSamples(data)
		msgBits := frame.EncodedBits(msgLen)

		res, err := Synchronize(buf, codes, tau, msgBits)
		if err == nil {
			if res.CodeIndex < 0 || res.CodeIndex >= len(codes) {
				t.Fatalf("sync matched code %d of %d", res.CodeIndex, len(codes))
			}
			if res.Offset < 0 || res.Offset > len(buf)-msgBits*chipLen {
				t.Fatalf("sync offset %d leaves no room for %d bits in %d chips",
					res.Offset, msgBits, len(buf))
			}
		}

		msg, codeIdx, off, err := frame.ReceiveScan(buf, codes, msgLen)
		if err != nil {
			return
		}
		if len(msg) != msgLen {
			t.Fatalf("decoded %d bytes, want %d", len(msg), msgLen)
		}
		if codeIdx < 0 || codeIdx >= len(codes) {
			t.Fatalf("matched code %d of %d", codeIdx, len(codes))
		}
		if off < 0 || off+msgBits*chipLen > len(buf) {
			t.Fatalf("frame offset %d out of bounds for %d chips", off, len(buf))
		}
	})
}
