package dsss_test

import (
	"fmt"
	"math/rand"

	"repro/internal/chips"
	"repro/internal/dsss"
)

// The full §V-B message path: RS-code the message, spread it, put it on a
// channel with a jamming burst under the μ/(1+μ) budget, synchronize by
// sliding correlation, and decode.
func ExampleFrame() {
	rng := rand.New(rand.NewSource(1))
	frame, _ := dsss.NewFrame(1.0, 0.15) // μ=1, τ=0.15
	code := chips.NewRandom(rng, 512)

	signal, _ := frame.Transmit([]byte("HELLO:A"), code)
	ch, _ := dsss.NewChannel(1000 + signal.Len())
	ch.Add(signal, 1000)
	// A reactive jammer inverts the trailing 30% — under the 50% budget.
	from := signal.Len() * 7 / 10
	ch.AddInverted(signal.Slice(from, signal.Len()), 1000+from)

	msg, _, off, err := frame.ReceiveScan(ch.Samples(), []chips.Sequence{code}, 7)
	fmt.Printf("err=%v offset=%d msg=%s\n", err, off, msg)
	// Output: err=<nil> offset=1000 msg=HELLO:A
}

// The buffering/processing schedule guarantees capture after (λ+1)·t_b of
// repetition regardless of phase.
func ExampleSchedule() {
	s, _ := dsss.NewSchedule(0.0987, 1.112) // the Table I t_b and t_p
	fmt.Printf("λ=%.1f capture budget=%.3fs captured=%v\n",
		s.Lambda(), s.GuaranteedCapture(), s.CapturesWindow(0.4, s.GuaranteedCapture()))
	// Output: λ=11.3 capture budget=1.211s captured=true
}
