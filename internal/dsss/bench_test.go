package dsss

import (
	"math/rand"
	"testing"

	"repro/internal/chips"
)

// Physical-layer micro-benchmarks, gated by cmd/jrsnd-benchgate against
// the checked-in BENCH_dsss.json baseline. The correlation inner loops
// here are the word-parallel-optimization target on the ROADMAP; the
// baseline pins today's cost so that work shows up as a measured win.

// benchSignal builds a 2-byte frame spread at offset 900 in a noisy-free
// buffer, shared by the receive-path benchmarks.
func benchSignal(b *testing.B, frame *Frame, code chips.Sequence) ([]int32, []byte) {
	b.Helper()
	msg := []byte{0xA5, 0x3C}
	sig, err := frame.Transmit(msg, code)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := NewChannel(900 + sig.Len() + 300)
	if err != nil {
		b.Fatal(err)
	}
	ch.Add(sig, 900)
	return ch.Samples(), msg
}

// BenchmarkDespreadAt measures the per-frame despread inner loop at the
// paper's N=512 chip length.
func BenchmarkDespreadAt(b *testing.B) {
	frame, err := NewFrame(1.0, 0.15)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	code := chips.NewRandom(rng, 512)
	buf, msg := benchSignal(b, frame, code)
	numBits := frame.EncodedBits(len(msg))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DespreadAt(buf, 900, code, 0.15, numBits); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReceiveScan measures the full §V-B receiver — sliding sync,
// despread, RS decode — over an 8-candidate code set.
func BenchmarkReceiveScan(b *testing.B) {
	frame, err := NewFrame(1.0, 0.15)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	codes := make([]chips.Sequence, 8)
	for i := range codes {
		codes[i] = chips.NewRandom(rng, 512)
	}
	buf, msg := benchSignal(b, frame, codes[3])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := frame.ReceiveScan(buf, codes, len(msg)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransmit measures the RS-encode + spread transmit path.
func BenchmarkTransmit(b *testing.B) {
	frame, err := NewFrame(1.0, 0.15)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	code := chips.NewRandom(rng, 512)
	msg := []byte{0xA5, 0x3C}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := frame.Transmit(msg, code); err != nil {
			b.Fatal(err)
		}
	}
}
