package dsss

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewScheduleValidation(t *testing.T) {
	if _, err := NewSchedule(0, 1); err == nil {
		t.Fatal("accepted t_b=0")
	}
	if _, err := NewSchedule(2, 1); err == nil {
		t.Fatal("accepted t_p < t_b")
	}
	s, err := NewSchedule(0.1, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if s.TB() != 0.1 || s.TP() != 1.1 {
		t.Fatal("accessors wrong")
	}
	if got := s.Lambda(); got < 10.9 || got > 11.1 {
		t.Fatalf("λ = %v, want 11", got)
	}
}

func TestBufferingWindows(t *testing.T) {
	s, _ := NewSchedule(1, 4) // windows [3,4), [7,8), [11,12) …
	cases := []struct {
		t    float64
		want bool
	}{
		{-1, false}, {0, false}, {2.9, false}, {3.0, true}, {3.5, true},
		{4.0, false}, {6.9, false}, {7.2, true}, {8.1, false},
	}
	for _, c := range cases {
		if got := s.Buffering(c.t); got != c.want {
			t.Errorf("Buffering(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestWindowAfter(t *testing.T) {
	s, _ := NewSchedule(1, 4)
	for _, c := range []struct {
		t          float64
		start, end float64
	}{
		{0, 3, 4}, {3, 3, 4}, {3.1, 7, 8}, {5, 7, 8}, {-2, 3, 4},
	} {
		start, end := s.WindowAfter(c.t)
		if start != c.start || end != c.end {
			t.Errorf("WindowAfter(%v) = [%v,%v), want [%v,%v)", c.t, start, end, c.start, c.end)
		}
	}
}

func TestGuaranteedCaptureIsTight(t *testing.T) {
	s, _ := NewSchedule(1, 4)
	if s.GuaranteedCapture() != 5 {
		t.Fatalf("GuaranteedCapture = %v, want t_p+t_b = 5", s.GuaranteedCapture())
	}
	// Any start phase with the guaranteed duration captures a window…
	for start := 0.0; start < 8; start += 0.097 {
		if !s.CapturesWindow(start, s.GuaranteedCapture()) {
			t.Fatalf("guaranteed duration missed a window at start %v", start)
		}
	}
	// …and some phase with slightly less duration misses.
	missed := false
	for start := 0.0; start < 8; start += 0.097 {
		if !s.CapturesWindow(start, s.GuaranteedCapture()-0.5) {
			missed = true
		}
	}
	if !missed {
		t.Fatal("shorter duration never missed; the bound would not be tight")
	}
}

func TestBufferNeverOverflows(t *testing.T) {
	s, _ := NewSchedule(0.0987, 1.112) // the paper's default t_b, t_p
	for tt := 0.0; tt < 12; tt += 0.001 {
		occ := s.BufferOccupancy(tt)
		if occ < 0 || occ > 1 {
			t.Fatalf("occupancy %v at t=%v out of [0,1]", occ, tt)
		}
	}
	if s.BufferOccupancy(-1) != 0 {
		t.Fatal("negative time must have empty buffer")
	}
}

// Property: for random schedules and phases, the §V-B repetition budget
// always captures a complete buffering window, and occupancy stays in
// [0, 1].
func TestPropertyScheduleInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := 0.01 + rng.Float64()
		tp := tb * (1 + rng.Float64()*20) // λ in [1, 21]
		s, err := NewSchedule(tb, tp)
		if err != nil {
			return false
		}
		start := rng.Float64() * 5 * tp
		if !s.CapturesWindow(start, s.GuaranteedCapture()) {
			return false
		}
		for i := 0; i < 50; i++ {
			occ := s.BufferOccupancy(rng.Float64() * 6 * tp)
			if occ < 0 || occ > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
