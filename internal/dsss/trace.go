package dsss

import "repro/internal/trace"

// Span tracing for the receive path: each Synchronize call inside
// ReceiveScan becomes a "dsss.sync_window" span covering the chip range
// it scanned, and each locked offset's decode attempt becomes a child
// "dsss.despread" span covering the frame's airtime. Timestamps are in
// seconds of chip time (offset / chipRate), so a chip-level trace can sit
// next to the protocol engine's virtual-time spans in one report.

// Trace attaches a tracer to the framer. chipRate converts chip offsets
// to span timestamps in seconds; a non-positive rate means "1 chip = 1
// second" (useful in tests). Pass a nil tracer to detach.
func (f *Frame) Trace(t *trace.Tracer, chipRate float64) {
	if chipRate <= 0 {
		chipRate = 1
	}
	f.tracer = t
	f.chipRate = chipRate
}

// chipTime converts a chip offset to a span timestamp.
func (f *Frame) chipTime(chips int) float64 { return float64(chips) / f.chipRate }
