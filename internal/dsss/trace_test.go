package dsss

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/chips"
	"repro/internal/trace"
)

// TestReceiveScanSpans: a traced scan must leave one sync_window span per
// Synchronize call, with the successful decode's despread span as its
// child covering the frame airtime in chip time.
func TestReceiveScanSpans(t *testing.T) {
	frame, err := NewFrame(1.0, testTau)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewRecorder(256)
	if err != nil {
		t.Fatal(err)
	}
	frame.Trace(trace.NewTracer(rec), 0) // chipRate<=0: timestamps in chips
	rng := rand.New(rand.NewSource(20))
	code := chips.NewRandom(rng, testChipLen)
	msg := []byte("HELLO:A")
	const off = 700
	sig, err := frame.Transmit(msg, code)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := NewChannel(off + sig.Len() + 500)
	ch.Add(sig, off)
	got, _, lockedAt, err := frame.ReceiveScan(ch.Samples(), []chips.Sequence{code}, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}

	f := trace.BuildSpans(rec.Events())
	syncs := f.Named("dsss.sync_window")
	if len(syncs) == 0 {
		t.Fatal("no dsss.sync_window spans recorded")
	}
	despreads := f.Named("dsss.despread")
	if len(despreads) == 0 {
		t.Fatal("no dsss.despread spans recorded")
	}
	last := despreads[len(despreads)-1]
	if last.EndDetail != "decoded code=0" {
		t.Fatalf("final despread verdict = %q, want decoded code=0", last.EndDetail)
	}
	if last.Parent == 0 {
		t.Fatal("despread span must parent to its sync_window span")
	}
	if last.Start != float64(lockedAt) {
		t.Fatalf("despread starts at chip %v, want lock offset %d", last.Start, lockedAt)
	}
	frameChips := frame.EncodedBits(len(msg)) * code.Len()
	if got := last.Duration(); got != float64(frameChips) {
		t.Fatalf("despread duration = %v chips, want frame airtime %d", got, frameChips)
	}
	if f.Open != 0 || f.OrphanEnds != 0 {
		t.Fatalf("unbalanced spans: open=%d orphans=%d", f.Open, f.OrphanEnds)
	}
}

// TestReceiveScanSpansOnMiss: a scan over pure noise must close its sync
// span with a "no signal" verdict, never leaving it open.
func TestReceiveScanSpansOnMiss(t *testing.T) {
	frame, _ := NewFrame(1.0, testTau)
	rec, _ := trace.NewRecorder(64)
	frame.Trace(trace.NewTracer(rec), 0)
	rng := rand.New(rand.NewSource(21))
	code := chips.NewRandom(rng, testChipLen)
	buf := make([]int32, 20*testChipLen)
	if _, _, _, err := frame.ReceiveScan(buf, []chips.Sequence{code}, 4); !errors.Is(err, ErrNoSignal) {
		t.Fatalf("err = %v, want ErrNoSignal", err)
	}
	f := trace.BuildSpans(rec.Events())
	syncs := f.Named("dsss.sync_window")
	if len(syncs) != 1 {
		t.Fatalf("got %d sync spans, want 1", len(syncs))
	}
	if syncs[0].Open || syncs[0].EndDetail != "no signal" {
		t.Fatalf("sync span = %+v, want closed with no signal", syncs[0])
	}
}
