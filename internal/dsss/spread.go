// Package dsss implements the chip-level DSSS physical layer of §III and
// §V-B: spreading message bits with a spread code, de-spreading by
// correlation against a threshold τ, the receiver's sliding-window
// synchronization over a buffered multi-level chip stream, and a channel
// model that superimposes concurrent transmissions (including jamming
// signals) chip by chip.
package dsss

import (
	"errors"
	"fmt"

	"repro/internal/chips"
)

// Erased marks a de-spread bit whose correlation magnitude fell below τ
// (neither a confident 1 nor a confident 0). Erased positions are handed to
// the Reed–Solomon decoder as erasures.
const Erased byte = 0xFF

// ErrNoSignal is returned by Synchronize when no spread message is found in
// the buffer.
var ErrNoSignal = errors.New("dsss: no recognizable signal in buffer")

// Sentinel errors for the allocation-free de-spread kernel: the hot path
// cannot format (fmt allocates), so it reports these and the allocating
// wrappers re-derive the detailed message.
var (
	ErrEmptyCode    = errors.New("dsss: empty spread code")
	ErrBadThreshold = errors.New("dsss: threshold τ must be in (0,1)")
	ErrWindowRange  = errors.New("dsss: despread window out of buffer range")
	ErrErasureRoom  = errors.New("dsss: erasure scratch shorter than bit count")
)

// BytesToBits expands bytes MSB-first into a 0/1 slice.
func BytesToBits(data []byte) []byte {
	bits := make([]byte, 8*len(data))
	for i, b := range data {
		for j := 0; j < 8; j++ {
			bits[8*i+j] = (b >> uint(7-j)) & 1
		}
	}
	return bits
}

// BitsToBytes packs a 0/1 slice (MSB-first) into bytes. Its length must be
// a multiple of 8, and no bit may be Erased.
func BitsToBytes(bits []byte) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("dsss: bit count %d not a multiple of 8", len(bits))
	}
	out := make([]byte, len(bits)/8)
	for i := range out {
		var b byte
		for j := 0; j < 8; j++ {
			v := bits[8*i+j]
			if v == Erased {
				return nil, fmt.Errorf("dsss: erased bit at position %d", 8*i+j)
			}
			b = b<<1 | (v & 1)
		}
		out[i] = b
	}
	return out, nil
}

// Spread multiplies each message bit by the spread code (§III): bit 1
// transmits the code, bit 0 (NRZ −1) transmits its chip-wise inverse. The
// result is the chip sequence of the whole message.
func Spread(bits []byte, code chips.Sequence) (chips.Sequence, error) {
	if code.Len() == 0 {
		return chips.Sequence{}, errors.New("dsss: empty spread code")
	}
	if len(bits) == 0 {
		return chips.Sequence{}, errors.New("dsss: empty message")
	}
	inv := code.Invert()
	out := chips.New(0)
	for i, b := range bits {
		switch b {
		case 1:
			out = out.Append(code)
		case 0:
			out = out.Append(inv)
		default:
			return chips.Sequence{}, fmt.Errorf("dsss: bit %d has invalid value %d", i, b)
		}
	}
	return out, nil
}

// DespreadInto is the allocation-free de-spread kernel: it fills bits
// (one message bit per code-length window, starting at chip offset off)
// and records the indices of Erased bits in the caller-provided erasures
// scratch, returning the erasure count. erasures must be at least
// len(bits) long. On bad inputs it reports a sentinel error; DespreadAt
// wraps this kernel with formatted diagnostics.
//
//jrsnd:hotpath
func DespreadInto(bits []byte, erasures []int, buf []int32, off int, code chips.Sequence, tau float64) (int, error) {
	n := code.Len()
	if n == 0 {
		return 0, ErrEmptyCode
	}
	if tau <= 0 || tau >= 1 {
		return 0, ErrBadThreshold
	}
	if off < 0 || off+len(bits)*n > len(buf) {
		return 0, ErrWindowRange
	}
	if len(erasures) < len(bits) {
		return 0, ErrErasureRoom
	}
	count := 0
	for i := range bits {
		corr := chips.CorrelateAt(code, buf, off+i*n)
		switch {
		case corr >= tau:
			bits[i] = 1
		case corr <= -tau:
			bits[i] = 0
		default:
			bits[i] = Erased
			erasures[count] = i
			count++
		}
	}
	return count, nil
}

// DespreadAt de-spreads numBits message bits from the multi-level chip
// buffer starting at chip offset off, using the given code and threshold
// τ. Bits whose correlation magnitude is below τ come back as Erased, and
// their indices are returned as erasures. It allocates the result slices
// and formats diagnostics; the per-window work happens in DespreadInto.
func DespreadAt(buf []int32, off int, code chips.Sequence, tau float64, numBits int) (bits []byte, erasures []int, err error) {
	n := code.Len()
	if n == 0 {
		return nil, nil, ErrEmptyCode
	}
	if tau <= 0 || tau >= 1 {
		return nil, nil, fmt.Errorf("dsss: threshold τ=%v must be in (0,1)", tau)
	}
	if off < 0 || off+numBits*n > len(buf) {
		return nil, nil, fmt.Errorf("dsss: window [%d, %d) out of buffer range [0, %d)", off, off+numBits*n, len(buf))
	}
	bits = make([]byte, numBits)
	scratch := make([]int, numBits)
	count, err := DespreadInto(bits, scratch, buf, off, code, tau)
	if err != nil {
		return nil, nil, err
	}
	if count > 0 {
		erasures = scratch[:count]
	}
	return bits, erasures, nil
}
