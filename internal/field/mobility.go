package field

import (
	"fmt"
	"math/rand"
)

// Waypoint implements the random-waypoint mobility model: each node picks a
// uniform destination and a uniform speed in [MinSpeed, MaxSpeed], travels
// there in a straight line, pauses for Pause seconds, and repeats. It is
// the standard MANET mobility model and drives the "node encounters are
// unpredictable / may last only a short while" premise of the paper's
// introduction.
type Waypoint struct {
	field    Field
	minSpeed float64
	maxSpeed float64
	pause    float64
	rng      *rand.Rand

	pos    []Point
	dest   []Point
	speed  []float64
	paused []float64 // remaining pause time
}

// WaypointConfig configures the mobility model.
type WaypointConfig struct {
	Field              Field
	MinSpeed, MaxSpeed float64 // m/s; MinSpeed > 0 avoids the speed-decay pathology
	Pause              float64 // seconds
	Rand               *rand.Rand
}

// NewWaypoint creates the model with nodes at the given initial positions.
func NewWaypoint(cfg WaypointConfig, initial []Point) (*Waypoint, error) {
	if cfg.Rand == nil {
		return nil, fmt.Errorf("field: WaypointConfig.Rand must be set")
	}
	if cfg.MinSpeed <= 0 || cfg.MaxSpeed < cfg.MinSpeed {
		return nil, fmt.Errorf("field: invalid speed range [%v, %v]", cfg.MinSpeed, cfg.MaxSpeed)
	}
	if cfg.Pause < 0 {
		return nil, fmt.Errorf("field: negative pause %v", cfg.Pause)
	}
	w := &Waypoint{
		field:    cfg.Field,
		minSpeed: cfg.MinSpeed,
		maxSpeed: cfg.MaxSpeed,
		pause:    cfg.Pause,
		rng:      cfg.Rand,
		pos:      make([]Point, len(initial)),
		dest:     make([]Point, len(initial)),
		speed:    make([]float64, len(initial)),
		paused:   make([]float64, len(initial)),
	}
	copy(w.pos, initial)
	for i := range w.pos {
		if !cfg.Field.Contains(w.pos[i]) {
			return nil, fmt.Errorf("field: initial position %d (%v) outside the field", i, w.pos[i])
		}
		w.pickLeg(i)
	}
	return w, nil
}

func (w *Waypoint) pickLeg(i int) {
	w.dest[i] = w.field.RandomPoint(w.rng)
	w.speed[i] = w.minSpeed + w.rng.Float64()*(w.maxSpeed-w.minSpeed)
}

// Len returns the number of nodes.
func (w *Waypoint) Len() int { return len(w.pos) }

// Position returns node i's current position.
func (w *Waypoint) Position(i int) Point { return w.pos[i] }

// Positions returns a copy of all current positions.
func (w *Waypoint) Positions() []Point {
	out := make([]Point, len(w.pos))
	copy(out, w.pos)
	return out
}

// Step advances every node by dt seconds.
func (w *Waypoint) Step(dt float64) {
	for i := range w.pos {
		w.stepNode(i, dt)
	}
}

func (w *Waypoint) stepNode(i int, dt float64) {
	for dt > 0 {
		if w.paused[i] > 0 {
			if w.paused[i] >= dt {
				w.paused[i] -= dt
				return
			}
			dt -= w.paused[i]
			w.paused[i] = 0
			w.pickLeg(i)
			continue
		}
		d := w.pos[i].Dist(w.dest[i])
		travel := w.speed[i] * dt
		if travel < d {
			frac := travel / d
			w.pos[i] = Point{
				X: w.pos[i].X + (w.dest[i].X-w.pos[i].X)*frac,
				Y: w.pos[i].Y + (w.dest[i].Y-w.pos[i].Y)*frac,
			}
			return
		}
		// Arrive and pause.
		if w.speed[i] > 0 {
			dt -= d / w.speed[i]
		} else {
			dt = 0
		}
		w.pos[i] = w.dest[i]
		w.paused[i] = w.pause
		if w.pause == 0 {
			w.pickLeg(i)
		}
	}
}
