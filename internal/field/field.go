// Package field provides the 2-D deployment geometry of the simulated
// MANET: uniform node placement on a rectangular field, a grid-bucketed
// spatial index for O(1) expected-time range queries, random-waypoint
// mobility, and physical-neighbor graph construction (two nodes are
// physical neighbors when they lie within transmission range — §V of the
// paper).
package field

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a position in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Field is a rectangular deployment area.
type Field struct {
	Width, Height float64
}

// New creates a field of the given dimensions in meters.
func New(width, height float64) (Field, error) {
	if width <= 0 || height <= 0 {
		return Field{}, fmt.Errorf("field: invalid dimensions %vx%v", width, height)
	}
	return Field{Width: width, Height: height}, nil
}

// RandomPoint samples a uniform point on the field.
func (f Field) RandomPoint(rng *rand.Rand) Point {
	return Point{X: rng.Float64() * f.Width, Y: rng.Float64() * f.Height}
}

// PlaceUniform samples n independent uniform positions.
func (f Field) PlaceUniform(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = f.RandomPoint(rng)
	}
	return pts
}

// Contains reports whether p lies on the field (inclusive).
func (f Field) Contains(p Point) bool {
	return p.X >= 0 && p.X <= f.Width && p.Y >= 0 && p.Y <= f.Height
}

// Clamp projects p onto the field.
func (f Field) Clamp(p Point) Point {
	return Point{X: clamp(p.X, 0, f.Width), Y: clamp(p.Y, 0, f.Height)}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
