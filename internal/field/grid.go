package field

import "fmt"

// Grid is a spatial index bucketing node positions into square cells of
// side equal to the query radius, so a range query inspects at most the
// 3×3 surrounding cells.
type Grid struct {
	field    Field
	cellSize float64
	cols     int
	rows     int
	cells    [][]int // node indices per cell
	pos      []Point
}

// NewGrid indexes the given positions for range queries of radius r.
func NewGrid(f Field, positions []Point, r float64) (*Grid, error) {
	if r <= 0 {
		return nil, fmt.Errorf("field: query radius %v must be positive", r)
	}
	cols := int(f.Width/r) + 1
	rows := int(f.Height/r) + 1
	g := &Grid{
		field:    f,
		cellSize: r,
		cols:     cols,
		rows:     rows,
		cells:    make([][]int, cols*rows),
		pos:      make([]Point, len(positions)),
	}
	copy(g.pos, positions)
	for i, p := range g.pos {
		c := g.cellOf(p)
		g.cells[c] = append(g.cells[c], i)
	}
	return g, nil
}

func (g *Grid) cellOf(p Point) int {
	cx := int(p.X / g.cellSize)
	cy := int(p.Y / g.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// Len returns the number of indexed nodes.
func (g *Grid) Len() int { return len(g.pos) }

// Position returns the indexed position of node i.
func (g *Grid) Position(i int) Point { return g.pos[i] }

// WithinRange appends to dst the indices of all nodes within distance r of
// node i (excluding i itself), where r is the radius the grid was built
// with, and returns the extended slice.
func (g *Grid) WithinRange(dst []int, i int) []int {
	p := g.pos[i]
	cx := int(p.X / g.cellSize)
	cy := int(p.Y / g.cellSize)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			x, y := cx+dx, cy+dy
			if x < 0 || x >= g.cols || y < 0 || y >= g.rows {
				continue
			}
			for _, j := range g.cells[y*g.cols+x] {
				if j != i && p.Dist(g.pos[j]) <= g.cellSize {
					dst = append(dst, j)
				}
			}
		}
	}
	return dst
}

// Graph is an undirected adjacency-list graph over node indices.
type Graph struct {
	Adj [][]int
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, nbrs := range g.Adj {
		total += len(nbrs)
	}
	return total / 2
}

// AvgDegree returns the mean number of neighbors per node (the paper's g).
func (g *Graph) AvgDegree() float64 {
	if len(g.Adj) == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(len(g.Adj))
}

// PhysicalGraph builds the physical-neighbor graph: an edge joins every
// pair of nodes within transmission range r.
func PhysicalGraph(f Field, positions []Point, r float64) (*Graph, error) {
	grid, err := NewGrid(f, positions, r)
	if err != nil {
		return nil, err
	}
	g := &Graph{Adj: make([][]int, len(positions))}
	for i := range positions {
		g.Adj[i] = grid.WithinRange(nil, i)
	}
	return g, nil
}

// BFSWithin returns, for every node reachable from src in at most maxHops
// hops, its hop distance. The src itself maps to 0.
func (g *Graph) BFSWithin(src, maxHops int) map[int]int {
	dist := map[int]int{src: 0}
	frontier := []int{src}
	for hop := 1; hop <= maxHops && len(frontier) > 0; hop++ {
		var next []int
		for _, u := range frontier {
			for _, v := range g.Adj[u] {
				if _, seen := dist[v]; !seen {
					dist[v] = hop
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// HopDistance returns the hop distance from src to dst, capped at maxHops;
// ok is false when dst is unreachable within the cap. The direct edge
// (src,dst), if present, may be excluded — M-NDP looks for an *indirect*
// path between two physical neighbors.
func (g *Graph) HopDistance(src, dst, maxHops int, excludeDirect bool) (int, bool) {
	if src == dst {
		return 0, true
	}
	visited := make(map[int]bool, 64)
	visited[src] = true
	frontier := []int{src}
	for hop := 1; hop <= maxHops && len(frontier) > 0; hop++ {
		var next []int
		for _, u := range frontier {
			for _, v := range g.Adj[u] {
				if excludeDirect && u == src && v == dst {
					continue
				}
				if v == dst {
					return hop, true
				}
				if !visited[v] {
					visited[v] = true
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return 0, false
}
