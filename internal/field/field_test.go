package field

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustField(t *testing.T, w, h float64) Field {
	t.Helper()
	f, err := New(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewRejectsBadDimensions(t *testing.T) {
	for _, dims := range [][2]float64{{0, 10}, {10, 0}, {-5, 10}} {
		if _, err := New(dims[0], dims[1]); err == nil {
			t.Errorf("New(%v, %v) accepted invalid dimensions", dims[0], dims[1])
		}
	}
}

func TestRandomPointInside(t *testing.T) {
	f := mustField(t, 5000, 5000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if p := f.RandomPoint(rng); !f.Contains(p) {
			t.Fatalf("RandomPoint produced %v outside the field", p)
		}
	}
}

func TestClamp(t *testing.T) {
	f := mustField(t, 100, 50)
	got := f.Clamp(Point{X: -3, Y: 70})
	if got != (Point{X: 0, Y: 50}) {
		t.Fatalf("Clamp = %v, want {0 50}", got)
	}
}

func TestDist(t *testing.T) {
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
}

func TestGridMatchesBruteForce(t *testing.T) {
	f := mustField(t, 1000, 1000)
	rng := rand.New(rand.NewSource(2))
	pts := f.PlaceUniform(rng, 300)
	const r = 120.0
	grid, err := NewGrid(f, pts, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		got := map[int]bool{}
		for _, j := range grid.WithinRange(nil, i) {
			got[j] = true
		}
		for j := range pts {
			want := i != j && pts[i].Dist(pts[j]) <= r
			if got[j] != want {
				t.Fatalf("node %d vs %d: grid=%v brute=%v", i, j, got[j], want)
			}
		}
	}
}

func TestGridRejectsBadRadius(t *testing.T) {
	f := mustField(t, 10, 10)
	if _, err := NewGrid(f, nil, 0); err == nil {
		t.Fatal("NewGrid accepted zero radius")
	}
}

func TestPhysicalGraphSymmetricAndIrreflexive(t *testing.T) {
	f := mustField(t, 2000, 2000)
	rng := rand.New(rand.NewSource(3))
	pts := f.PlaceUniform(rng, 200)
	g, err := PhysicalGraph(f, pts, 300)
	if err != nil {
		t.Fatal(err)
	}
	adjSet := make([]map[int]bool, len(pts))
	for i, nbrs := range g.Adj {
		adjSet[i] = map[int]bool{}
		for _, j := range nbrs {
			if j == i {
				t.Fatalf("node %d adjacent to itself", i)
			}
			adjSet[i][j] = true
		}
	}
	for i := range pts {
		for j := range adjSet[i] {
			if !adjSet[j][i] {
				t.Fatalf("edge %d→%d not symmetric", i, j)
			}
		}
	}
}

func TestAvgDegreeMatchesDensity(t *testing.T) {
	// Expected degree ≈ n·π·r²/Area away from boundary effects; with
	// r=300 on 5000×5000 and n=2000 the paper's g ≈ 20-23.
	f := mustField(t, 5000, 5000)
	rng := rand.New(rand.NewSource(4))
	pts := f.PlaceUniform(rng, 2000)
	g, err := PhysicalGraph(f, pts, 300)
	if err != nil {
		t.Fatal(err)
	}
	got := g.AvgDegree()
	ideal := 2000 * math.Pi * 300 * 300 / (5000 * 5000) // ≈ 22.6 without border effects
	if got < ideal*0.80 || got > ideal*1.02 {
		t.Fatalf("AvgDegree = %v, want within [%.1f, %.1f]", got, ideal*0.80, ideal*1.02)
	}
}

func TestBFSWithinAndHopDistance(t *testing.T) {
	// Path graph 0-1-2-3-4 plus a chord 0-4.
	g := &Graph{Adj: [][]int{
		{1, 4}, {0, 2}, {1, 3}, {2, 4}, {3, 0},
	}}
	dist := g.BFSWithin(0, 2)
	want := map[int]int{0: 0, 1: 1, 4: 1, 2: 2, 3: 2}
	if len(dist) != len(want) {
		t.Fatalf("BFSWithin = %v, want %v", dist, want)
	}
	for k, v := range want {
		if dist[k] != v {
			t.Fatalf("BFSWithin[%d] = %d, want %d", k, dist[k], v)
		}
	}
	if h, ok := g.HopDistance(0, 4, 5, false); !ok || h != 1 {
		t.Fatalf("HopDistance(0,4) = %d,%v, want 1,true", h, ok)
	}
	// Excluding the direct edge, 0→4 goes through 1-2-3.
	if h, ok := g.HopDistance(0, 4, 5, true); !ok || h != 4 {
		t.Fatalf("HopDistance(0,4, excludeDirect) = %d,%v, want 4,true", h, ok)
	}
	if _, ok := g.HopDistance(0, 4, 3, true); ok {
		t.Fatal("HopDistance found a path beyond the hop cap")
	}
	if h, ok := g.HopDistance(2, 2, 1, false); !ok || h != 0 {
		t.Fatalf("HopDistance(self) = %d,%v, want 0,true", h, ok)
	}
}

func TestHopDistanceUnreachable(t *testing.T) {
	g := &Graph{Adj: [][]int{{1}, {0}, {}}}
	if _, ok := g.HopDistance(0, 2, 10, false); ok {
		t.Fatal("found a path to a disconnected node")
	}
}

func TestWaypointStaysInFieldAndMoves(t *testing.T) {
	f := mustField(t, 1000, 1000)
	rng := rand.New(rand.NewSource(5))
	initial := f.PlaceUniform(rng, 50)
	w, err := NewWaypoint(WaypointConfig{
		Field: f, MinSpeed: 1, MaxSpeed: 10, Pause: 2, Rand: rng,
	}, initial)
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for step := 0; step < 200; step++ {
		w.Step(1.0)
		for i := 0; i < w.Len(); i++ {
			p := w.Position(i)
			if !f.Contains(p) {
				t.Fatalf("step %d: node %d left the field: %v", step, i, p)
			}
			if p != initial[i] {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("no node moved in 200 s")
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	f := mustField(t, 1000, 1000)
	rng := rand.New(rand.NewSource(6))
	initial := f.PlaceUniform(rng, 20)
	w, err := NewWaypoint(WaypointConfig{
		Field: f, MinSpeed: 2, MaxSpeed: 5, Pause: 0, Rand: rng,
	}, initial)
	if err != nil {
		t.Fatal(err)
	}
	prev := w.Positions()
	for step := 0; step < 100; step++ {
		const dt = 0.5
		w.Step(dt)
		for i := 0; i < w.Len(); i++ {
			d := prev[i].Dist(w.Position(i))
			if d > 5*dt+1e-9 {
				t.Fatalf("node %d moved %v m in %v s (max speed 5)", i, d, dt)
			}
		}
		prev = w.Positions()
	}
}

func TestWaypointValidation(t *testing.T) {
	f := mustField(t, 10, 10)
	rng := rand.New(rand.NewSource(7))
	if _, err := NewWaypoint(WaypointConfig{Field: f, MinSpeed: 1, MaxSpeed: 2, Rand: nil}, nil); err == nil {
		t.Fatal("accepted nil Rand")
	}
	if _, err := NewWaypoint(WaypointConfig{Field: f, MinSpeed: 0, MaxSpeed: 2, Rand: rng}, nil); err == nil {
		t.Fatal("accepted zero MinSpeed")
	}
	if _, err := NewWaypoint(WaypointConfig{Field: f, MinSpeed: 3, MaxSpeed: 2, Rand: rng}, nil); err == nil {
		t.Fatal("accepted MaxSpeed < MinSpeed")
	}
	if _, err := NewWaypoint(WaypointConfig{Field: f, MinSpeed: 1, MaxSpeed: 2, Pause: -1, Rand: rng}, nil); err == nil {
		t.Fatal("accepted negative pause")
	}
	if _, err := NewWaypoint(WaypointConfig{Field: f, MinSpeed: 1, MaxSpeed: 2, Rand: rng},
		[]Point{{X: 100, Y: 100}}); err == nil {
		t.Fatal("accepted out-of-field initial position")
	}
}

// Property: grid range queries agree with brute force for random layouts.
func TestPropertyGridEquivalence(t *testing.T) {
	f := mustField(t, 500, 500)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := f.PlaceUniform(rng, 60)
		const r = 80.0
		grid, err := NewGrid(f, pts, r)
		if err != nil {
			return false
		}
		i := rng.Intn(len(pts))
		got := map[int]bool{}
		for _, j := range grid.WithinRange(nil, i) {
			got[j] = true
		}
		for j := range pts {
			want := i != j && pts[i].Dist(pts[j]) <= r
			if got[j] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
