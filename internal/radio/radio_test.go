package radio

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/codepool"
	"repro/internal/sim"
)

func compromisedSet(ids ...codepool.CodeID) *codepool.CodeSet {
	s := codepool.NewCodeSet(1000)
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func TestNoJammer(t *testing.T) {
	j := NoJammer{}
	if j.TryJam(Transmission{Code: 3}) {
		t.Fatal("NoJammer jammed")
	}
	if j.Name() != "none" {
		t.Fatal("wrong name")
	}
}

func TestReactiveJammerExactlyCompromisedCodes(t *testing.T) {
	j := NewReactiveJammer(compromisedSet(1, 2, 3))
	if !j.TryJam(Transmission{Code: 2}) {
		t.Fatal("reactive jammer missed a compromised code")
	}
	if j.TryJam(Transmission{Code: 9}) {
		t.Fatal("reactive jammer hit a non-compromised code")
	}
	if j.TryJam(Transmission{Code: SessionCode}) {
		t.Fatal("reactive jammer hit an unknown session code")
	}
	if !j.TryJam(Transmission{Code: SessionCode, SessionKnown: true}) {
		t.Fatal("reactive jammer missed a leaked session code")
	}
	if j.Name() != "reactive" {
		t.Fatal("wrong name")
	}
}

func TestRandomJammerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cs := compromisedSet(1)
	if _, err := NewRandomJammer(-1, 1, cs, rng); err == nil {
		t.Fatal("accepted z<0")
	}
	if _, err := NewRandomJammer(1, 0, cs, rng); err == nil {
		t.Fatal("accepted μ=0")
	}
	if _, err := NewRandomJammer(1, 1, cs, nil); err == nil {
		t.Fatal("accepted nil rng")
	}
}

func TestRandomJammerHitRateMatchesBeta(t *testing.T) {
	// c = 100 compromised codes, z = 10, μ = 1 → tries = 20, β = 0.2.
	ids := make([]codepool.CodeID, 100)
	for i := range ids {
		ids[i] = codepool.CodeID(i)
	}
	cs := compromisedSet(ids...)
	j, err := NewRandomJammer(10, 1, cs, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if j.Tries() != 20 {
		t.Fatalf("Tries = %d, want 20", j.Tries())
	}
	const trials = 20000
	hits := 0
	for i := 0; i < trials; i++ {
		if j.TryJam(Transmission{Code: 7}) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.2) > 0.015 {
		t.Fatalf("hit rate = %v, want ≈ β = 0.2", rate)
	}
	// Non-compromised codes and session codes are never hit.
	for i := 0; i < 100; i++ {
		if j.TryJam(Transmission{Code: 999}) {
			t.Fatal("random jammer hit a non-compromised code")
		}
		if j.TryJam(Transmission{Code: SessionCode}) {
			t.Fatal("random jammer hit a session code")
		}
	}
	if !j.TryJam(Transmission{Code: SessionCode, SessionKnown: true}) {
		t.Fatal("random jammer missed a leaked session code")
	}
}

func TestRandomJammerSaturates(t *testing.T) {
	// tries >= c → every compromised transmission is jammed.
	cs := compromisedSet(1, 2, 3)
	j, err := NewRandomJammer(10, 1, cs, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if !j.TryJam(Transmission{Code: 2}) {
			t.Fatal("saturated random jammer missed")
		}
	}
}

func TestRandomJammerEmptyKnowledge(t *testing.T) {
	j, err := NewRandomJammer(10, 1, codepool.NewCodeSet(10), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if j.TryJam(Transmission{Code: 1}) {
		t.Fatal("jammer with no knowledge jammed")
	}
}

func newTestMedium(t *testing.T, jammer Jammer, adj map[int][]int) (*Medium, *sim.Engine) {
	t.Helper()
	engine := sim.NewEngine()
	m, err := NewMedium(MediumConfig{
		Engine:   engine,
		Jammer:   jammer,
		Adjacent: func(n int) []int { return adj[n] },
		ChipLen:  512,
		ChipRate: 22e6,
		Mu:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, engine
}

func TestMediumValidation(t *testing.T) {
	engine := sim.NewEngine()
	adj := func(int) []int { return nil }
	bad := []MediumConfig{
		{Jammer: NoJammer{}, Adjacent: adj, ChipLen: 1, ChipRate: 1, Mu: 1},
		{Engine: engine, Adjacent: adj, ChipLen: 1, ChipRate: 1, Mu: 1},
		{Engine: engine, Jammer: NoJammer{}, ChipLen: 1, ChipRate: 1, Mu: 1},
		{Engine: engine, Jammer: NoJammer{}, Adjacent: adj, ChipLen: 0, ChipRate: 1, Mu: 1},
		{Engine: engine, Jammer: NoJammer{}, Adjacent: adj, ChipLen: 1, ChipRate: 0, Mu: 1},
		{Engine: engine, Jammer: NoJammer{}, Adjacent: adj, ChipLen: 1, ChipRate: 1, Mu: 0},
	}
	for i, cfg := range bad {
		if _, err := NewMedium(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestBroadcastReachesNeighborsAfterAirtime(t *testing.T) {
	adj := map[int][]int{0: {1, 2}, 1: {0}, 2: {0}}
	m, engine := newTestMedium(t, NoJammer{}, adj)
	type rx struct {
		node int
		at   sim.Time
		msg  Message
	}
	var got []rx
	for _, node := range []int{1, 2, 3} {
		node := node
		m.Attach(node, func(from int, msg Message) {
			got = append(got, rx{node: node, at: engine.Now(), msg: msg})
		})
	}
	msg := Message{Kind: 1, Code: 5, PayloadBits: 21}
	if err := m.Broadcast(0, msg); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("delivered to %d nodes, want 2 (node 3 is out of range)", len(got))
	}
	wantAir := sim.Time(2 * 21 * 512 / 22e6)
	for _, r := range got {
		if math.Abs(float64(r.at-wantAir)) > 1e-12 {
			t.Fatalf("delivery at %v, want %v", r.at, wantAir)
		}
		if r.msg.Kind != 1 || r.msg.Code != 5 {
			t.Fatalf("message corrupted in flight: %+v", r.msg)
		}
	}
	s := m.Stats()
	if s.Transmissions != 1 || s.Jammed != 0 || s.Delivered != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestUnicastOnlyTargets(t *testing.T) {
	adj := map[int][]int{0: {1, 2}}
	m, engine := newTestMedium(t, NoJammer{}, adj)
	var delivered []int
	for _, node := range []int{1, 2} {
		node := node
		m.Attach(node, func(int, Message) { delivered = append(delivered, node) })
	}
	if err := m.Unicast(0, 2, Message{Kind: 1, Code: 5, PayloadBits: 10}); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(delivered) != 1 || delivered[0] != 2 {
		t.Fatalf("delivered = %v, want [2]", delivered)
	}
	if err := m.Unicast(0, -5, Message{PayloadBits: 1}); err == nil {
		t.Fatal("accepted negative unicast target")
	}
}

func TestJammedTransmissionDropped(t *testing.T) {
	adj := map[int][]int{0: {1}}
	m, engine := newTestMedium(t, NewReactiveJammer(compromisedSet(5)), adj)
	count := 0
	m.Attach(1, func(int, Message) { count++ })
	// Compromised code 5 → jammed; code 6 → delivered.
	if err := m.Broadcast(0, Message{Code: 5, PayloadBits: 10}); err != nil {
		t.Fatal(err)
	}
	if err := m.Broadcast(0, Message{Code: 6, PayloadBits: 10}); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("delivered %d messages, want 1", count)
	}
	s := m.Stats()
	if s.Transmissions != 2 || s.Jammed != 1 || s.Delivered != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestObserverSeesEveryTransmission(t *testing.T) {
	adj := map[int][]int{0: {1}}
	engine := sim.NewEngine()
	type obs struct {
		from, to int
		jammed   bool
		kind     int
	}
	var seen []obs
	m, err := NewMedium(MediumConfig{
		Engine:   engine,
		Jammer:   NewReactiveJammer(compromisedSet(5)),
		Adjacent: func(n int) []int { return adj[n] },
		ChipLen:  512,
		ChipRate: 22e6,
		Mu:       1,
		Observer: func(from, to int, msg Message, jammed bool) {
			seen = append(seen, obs{from: from, to: to, jammed: jammed, kind: msg.Kind})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Broadcast(0, Message{Kind: 1, Code: 5, PayloadBits: 10}); err != nil {
		t.Fatal(err)
	}
	if err := m.Unicast(0, 1, Message{Kind: 2, Code: 6, PayloadBits: 10}); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("observer saw %d transmissions, want 2", len(seen))
	}
	if !seen[0].jammed || seen[0].to != -1 || seen[0].kind != 1 {
		t.Fatalf("first observation wrong: %+v", seen[0])
	}
	if seen[1].jammed || seen[1].to != 1 || seen[1].kind != 2 {
		t.Fatalf("second observation wrong: %+v", seen[1])
	}
}

func TestBroadcastRejectsEmptyPayload(t *testing.T) {
	m, _ := newTestMedium(t, NoJammer{}, map[int][]int{})
	if err := m.Broadcast(0, Message{PayloadBits: 0}); err == nil {
		t.Fatal("accepted zero payload bits")
	}
}
