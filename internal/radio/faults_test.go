package radio

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/codepool"
	"repro/internal/sim"
)

func TestPulseJammerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewPulseJammer(nil, 0.5, rng); err == nil {
		t.Fatal("accepted nil inner jammer")
	}
	if _, err := NewPulseJammer(NoJammer{}, -0.1, rng); err == nil {
		t.Fatal("accepted negative duty")
	}
	if _, err := NewPulseJammer(NoJammer{}, 1.5, rng); err == nil {
		t.Fatal("accepted duty > 1")
	}
	if _, err := NewPulseJammer(NoJammer{}, 0.5, nil); err == nil {
		t.Fatal("accepted nil rng")
	}
}

func TestPulseJammerDutyCycle(t *testing.T) {
	inner := NewReactiveJammer(compromisedSet(7))
	j, err := NewPulseJammer(inner, 0.3, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if j.Name() != "pulse(reactive)" {
		t.Fatalf("name = %q", j.Name())
	}
	const trials = 20000
	hits := 0
	for i := 0; i < trials; i++ {
		if j.TryJam(Transmission{Code: 7}) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.3) > 0.015 {
		t.Fatalf("jam rate %v on a known code, want ≈ duty 0.3", rate)
	}
	// Codes the inner jammer does not know are never hit, whatever the phase.
	for i := 0; i < 1000; i++ {
		if j.TryJam(Transmission{Code: 9}) {
			t.Fatal("pulse jammer hit a code the inner jammer does not know")
		}
	}
}

func TestPulseJammerDeterministicSameSeed(t *testing.T) {
	run := func() []bool {
		j, err := NewPulseJammer(NewReactiveJammer(compromisedSet(1, 2)), 0.5, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 100)
		for i := range out {
			out[i] = j.TryJam(Transmission{Code: codepool.CodeID(i % 3)})
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d diverged between same-seed runs", i)
		}
	}
}

func TestSweepJammerValidation(t *testing.T) {
	cs := compromisedSet(1)
	clock := func() sim.Time { return 0 }
	if _, err := NewSweepJammer(cs, 0, 1, clock); err == nil {
		t.Fatal("accepted window 0")
	}
	if _, err := NewSweepJammer(cs, 1, 0, clock); err == nil {
		t.Fatal("accepted epoch 0")
	}
	if _, err := NewSweepJammer(cs, 1, 1, nil); err == nil {
		t.Fatal("accepted nil clock")
	}
}

func TestSweepJammerRotatesWindowPerEpoch(t *testing.T) {
	// Compromised ranks: code 10→0, 20→1, 30→2, 40→3. Window 2, epoch 1 s.
	cs := compromisedSet(10, 20, 30, 40)
	now := sim.Time(0)
	j, err := NewSweepJammer(cs, 2, 1, func() sim.Time { return now })
	if err != nil {
		t.Fatal(err)
	}
	if j.Name() != "sweep" {
		t.Fatalf("name = %q", j.Name())
	}
	jams := func(c codepool.CodeID) bool { return j.TryJam(Transmission{Code: c}) }
	// Epoch 0 targets ranks {0, 1} = codes {10, 20}.
	if !jams(10) || !jams(20) || jams(30) || jams(40) {
		t.Fatal("epoch 0 window wrong")
	}
	// Epoch 1 targets ranks {2, 3} = codes {30, 40}.
	now = 1.5
	if jams(10) || jams(20) || !jams(30) || !jams(40) {
		t.Fatal("epoch 1 window wrong")
	}
	// Epoch 2 wraps back to ranks {0, 1}.
	now = 2.1
	if !jams(10) || !jams(20) || jams(30) || jams(40) {
		t.Fatal("epoch 2 window did not wrap")
	}
	// Codes outside the compromised set are always safe; unknown session
	// codes too.
	if jams(999) || jams(SessionCode) {
		t.Fatal("sweep jammer hit an unknown code")
	}
	if !j.TryJam(Transmission{Code: SessionCode, SessionKnown: true}) {
		t.Fatal("sweep jammer missed a leaked session code")
	}
}

func TestSweepJammerSaturatesWhenWindowCoversSet(t *testing.T) {
	cs := compromisedSet(3, 4)
	j, err := NewSweepJammer(cs, 5, 1, func() sim.Time { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if !j.TryJam(Transmission{Code: 3}) || !j.TryJam(Transmission{Code: 4}) {
		t.Fatal("saturated sweep jammer missed a known code")
	}
}

func TestCodeSetRank(t *testing.T) {
	cs := compromisedSet(5, 70, 200)
	for i, want := range map[codepool.CodeID]int{5: 0, 70: 1, 200: 2} {
		if got := cs.Rank(i); got != want {
			t.Fatalf("Rank(%d) = %d, want %d", i, got, want)
		}
	}
	if got := cs.Rank(6); got != -1 {
		t.Fatalf("Rank(non-member) = %d, want -1", got)
	}
}

func TestMediumFaultDrop(t *testing.T) {
	adj := map[int][]int{0: {1}}
	engine := sim.NewEngine()
	drop := true
	m, err := NewMedium(MediumConfig{
		Engine:   engine,
		Jammer:   NoJammer{},
		Adjacent: func(n int) []int { return adj[n] },
		ChipLen:  512, ChipRate: 22e6, Mu: 1,
		Faults: InjectorFunc(func(from, to int, msg Message) FaultDecision {
			return FaultDecision{Drop: drop}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	m.Attach(1, func(int, Message) { count++ })
	if err := m.Broadcast(0, Message{Code: 1, PayloadBits: 10}); err != nil {
		t.Fatal(err)
	}
	drop = false
	if err := m.Broadcast(0, Message{Code: 1, PayloadBits: 10}); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("delivered %d, want 1 (first frame lost)", count)
	}
	s := m.Stats()
	if s.Lost != 1 || s.Delivered != 1 || s.Transmissions != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMediumFaultDuplicate(t *testing.T) {
	adj := map[int][]int{0: {1}}
	engine := sim.NewEngine()
	m, err := NewMedium(MediumConfig{
		Engine:   engine,
		Jammer:   NoJammer{},
		Adjacent: func(n int) []int { return adj[n] },
		ChipLen:  512, ChipRate: 22e6, Mu: 1,
		Faults: InjectorFunc(func(from, to int, msg Message) FaultDecision {
			return FaultDecision{Duplicate: true}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	m.Attach(1, func(int, Message) { count++ })
	if err := m.Broadcast(0, Message{Code: 1, PayloadBits: 10}); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("delivered %d copies, want 2", count)
	}
	if s := m.Stats(); s.Duplicated != 1 || s.Delivered != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMediumFaultReorder(t *testing.T) {
	// Two frames sent back-to-back; the first gets a large extra delay, so
	// the second overtakes it.
	adj := map[int][]int{0: {1}}
	engine := sim.NewEngine()
	sent := 0
	m, err := NewMedium(MediumConfig{
		Engine:   engine,
		Jammer:   NoJammer{},
		Adjacent: func(n int) []int { return adj[n] },
		ChipLen:  512, ChipRate: 22e6, Mu: 1,
		Faults: InjectorFunc(func(from, to int, msg Message) FaultDecision {
			sent++
			if sent == 1 {
				return FaultDecision{Delay: 1}
			}
			return FaultDecision{}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	m.Attach(1, func(_ int, msg Message) { order = append(order, msg.Kind) })
	if err := m.Broadcast(0, Message{Kind: 1, Code: 1, PayloadBits: 10}); err != nil {
		t.Fatal(err)
	}
	if err := m.Broadcast(0, Message{Kind: 2, Code: 1, PayloadBits: 10}); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("delivery order = %v, want [2 1]", order)
	}
	if s := m.Stats(); s.Delayed != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMediumFaultsNotConsultedWhenJammed(t *testing.T) {
	adj := map[int][]int{0: {1}}
	engine := sim.NewEngine()
	calls := 0
	m, err := NewMedium(MediumConfig{
		Engine:   engine,
		Jammer:   NewReactiveJammer(compromisedSet(5)),
		Adjacent: func(n int) []int { return adj[n] },
		ChipLen:  512, ChipRate: 22e6, Mu: 1,
		Faults: InjectorFunc(func(from, to int, msg Message) FaultDecision {
			calls++
			return FaultDecision{}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(1, func(int, Message) {})
	if err := m.Broadcast(0, Message{Code: 5, PayloadBits: 10}); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("injector consulted %d times for a jammed frame, want 0", calls)
	}
}
