package radio

import (
	"fmt"

	"repro/internal/codepool"
	"repro/internal/sim"
)

// Message is a protocol message on the air. The medium is payload-agnostic;
// the protocol layer defines Kind and Payload.
type Message struct {
	Kind         int
	Code         codepool.CodeID // pool code in use, or SessionCode
	SessionKnown bool            // jammer knows the session code
	PayloadBits  int             // pre-ECC payload length in bits
	Payload      any
}

// Handler receives messages that survived jamming. from is the transmitter
// index; a handler is only invoked for nodes in range of the transmitter.
type Handler func(from int, msg Message)

// Stats aggregates medium activity.
type Stats struct {
	Transmissions int
	Jammed        int
	Delivered     int
	// Channel-fault outcomes (zero unless a FaultInjector is configured).
	Lost       int // frames dropped by the fault plan
	Duplicated int // frames delivered twice
	Delayed    int // frames delivered with extra reorder delay
}

// FaultDecision is one channel-fault verdict for a transmission that
// survived jamming.
type FaultDecision struct {
	// Drop loses the frame entirely (no receiver hears it).
	Drop bool
	// Duplicate delivers the frame a second time, right after the first.
	Duplicate bool
	// Delay adds extra latency before delivery, letting later frames
	// overtake this one (bounded reorder). Must be >= 0.
	Delay sim.Time
}

// FaultInjector decides per-transmission channel faults. Implementations
// must be deterministic given their RNG stream; the medium consults the
// injector exactly once per non-jammed transmission, in engine order.
// to is -1 for broadcasts.
type FaultInjector interface {
	Decide(from, to int, msg Message) FaultDecision
}

// InjectorFunc adapts a function to the FaultInjector interface.
type InjectorFunc func(from, to int, msg Message) FaultDecision

// Decide invokes the function.
func (f InjectorFunc) Decide(from, to int, msg Message) FaultDecision { return f(from, to, msg) }

// Interceptor sits on the air between transmitter and receivers: it sees
// every transmission that survived jamming and returns the message that is
// actually delivered — possibly with a mutated payload (Byzantine frame
// corruption), and possibly after recording it for later reinjection. It
// runs before the FaultInjector, so channel faults apply to the mutated
// frame. Implementations must be deterministic given their RNG stream.
// to is -1 for broadcasts.
type Interceptor interface {
	Intercept(from, to int, msg Message) Message
}

// InterceptorFunc adapts a function to the Interceptor interface.
type InterceptorFunc func(from, to int, msg Message) Message

// Intercept invokes the function.
func (f InterceptorFunc) Intercept(from, to int, msg Message) Message { return f(from, to, msg) }

// Medium is the message-level shared radio: transmissions reach all
// physical neighbors of the sender after the frame airtime, unless the
// omnipresent jammer destroys the frame (decided once per transmission,
// since the jamming signal covers the whole neighborhood).
type Medium struct {
	engine   *sim.Engine
	jammer   Jammer
	adjacent func(node int) []int
	chipLen  int
	chipRate float64
	mu       float64
	observer  func(from, to int, msg Message, jammed bool)
	faults    FaultInjector
	intercept Interceptor
	handlers  map[int]Handler
	stats     Stats
}

// MediumConfig configures the medium.
type MediumConfig struct {
	Engine *sim.Engine
	Jammer Jammer
	// Adjacent returns the current physical neighbors of a node. It is
	// consulted at delivery time, so mobility is honored.
	Adjacent func(node int) []int
	ChipLen  int     // N
	ChipRate float64 // R
	Mu       float64 // μ (ECC expansion; scales airtime)
	// Observer, when set, is invoked synchronously for every transmission
	// with the jam verdict (to = -1 for broadcasts). Used for tracing.
	Observer func(from, to int, msg Message, jammed bool)
	// Faults, when set, injects channel faults (loss, duplication, bounded
	// reorder) into every transmission that survived jamming.
	Faults FaultInjector
	// Intercept, when set, is consulted once per transmission that survived
	// jamming, before the fault injector, and may replace the delivered
	// message (Byzantine on-air adversaries).
	Intercept Interceptor
}

// NewMedium creates a medium.
func NewMedium(cfg MediumConfig) (*Medium, error) {
	switch {
	case cfg.Engine == nil:
		return nil, fmt.Errorf("radio: Engine must be set")
	case cfg.Jammer == nil:
		return nil, fmt.Errorf("radio: Jammer must be set")
	case cfg.Adjacent == nil:
		return nil, fmt.Errorf("radio: Adjacent must be set")
	case cfg.ChipLen < 1:
		return nil, fmt.Errorf("radio: ChipLen %d must be >= 1", cfg.ChipLen)
	case cfg.ChipRate <= 0:
		return nil, fmt.Errorf("radio: ChipRate %v must be positive", cfg.ChipRate)
	case cfg.Mu <= 0:
		return nil, fmt.Errorf("radio: Mu %v must be positive", cfg.Mu)
	}
	return &Medium{
		engine:    cfg.Engine,
		jammer:    cfg.Jammer,
		adjacent:  cfg.Adjacent,
		chipLen:   cfg.ChipLen,
		chipRate:  cfg.ChipRate,
		mu:        cfg.Mu,
		observer:  cfg.Observer,
		faults:    cfg.Faults,
		intercept: cfg.Intercept,
		handlers:  map[int]Handler{},
	}, nil
}

// SetInterceptor arms (or, with nil, disarms) the on-air interceptor after
// construction, so an adversary can be plugged into an already-built
// network.
func (m *Medium) SetInterceptor(i Interceptor) { m.intercept = i }

// Attach registers node's receive handler.
func (m *Medium) Attach(node int, h Handler) {
	m.handlers[node] = h
}

// Airtime returns the on-air duration of a payload of the given bit length
// after ECC expansion: (1+μ)·bits·N/R.
func (m *Medium) Airtime(payloadBits int) sim.Time {
	return sim.Time((1 + m.mu) * float64(payloadBits) * float64(m.chipLen) / m.chipRate)
}

// Stats returns a copy of the medium counters.
func (m *Medium) Stats() Stats { return m.stats }

// Broadcast transmits msg from the sender to every physical neighbor. The
// jam decision is made once per transmission; jammed frames are dropped
// (no receiver can de-spread them).
func (m *Medium) Broadcast(from int, msg Message) error {
	return m.transmit(from, -1, msg)
}

// Unicast transmits msg to one physical neighbor. Delivery still requires
// `to` to be within range at delivery time.
func (m *Medium) Unicast(from, to int, msg Message) error {
	if to < 0 {
		return fmt.Errorf("radio: invalid unicast target %d", to)
	}
	return m.transmit(from, to, msg)
}

func (m *Medium) transmit(from, to int, msg Message) error {
	if msg.PayloadBits <= 0 {
		return fmt.Errorf("radio: message payload bits %d must be positive", msg.PayloadBits)
	}
	m.stats.Transmissions++
	jammed := m.jammer.TryJam(Transmission{Code: msg.Code, SessionKnown: msg.SessionKnown, Kind: msg.Kind})
	if jammed {
		m.stats.Jammed++
	}
	if m.observer != nil {
		m.observer(from, to, msg, jammed)
	}
	if !jammed && m.intercept != nil {
		msg = m.intercept.Intercept(from, to, msg)
	}
	var fd FaultDecision
	if !jammed && m.faults != nil {
		fd = m.faults.Decide(from, to, msg)
		switch {
		case fd.Drop:
			m.stats.Lost++
		case fd.Duplicate:
			m.stats.Duplicated++
		}
		if !fd.Drop && fd.Delay > 0 {
			m.stats.Delayed++
		}
	}
	airtime := m.Airtime(msg.PayloadBits)
	deliver := func() {
		for _, nbr := range m.adjacent(from) {
			if to >= 0 && nbr != to {
				continue
			}
			if h, ok := m.handlers[nbr]; ok {
				m.stats.Delivered++
				h(from, msg)
			}
		}
	}
	_, err := m.engine.Schedule(airtime+fd.Delay, func() {
		if jammed || fd.Drop {
			return
		}
		deliver()
		if fd.Duplicate {
			deliver()
		}
	})
	return err
}
