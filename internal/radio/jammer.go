// Package radio provides the message-level shared medium and the adversary
// models of §IV-B. At this fidelity a transmission is characterized by the
// spread code it uses; the omnipresent jammer decides per transmission
// whether it destroys the message (i.e. corrupts more than the μ/(1+μ)
// ECC budget using the correct code). The chip-level counterpart of this
// abstraction lives in internal/dsss and is validated against it in tests:
// the decision procedure here is exactly the success model proved in
// Theorem 1.
package radio

import (
	"fmt"
	"math/rand"

	"repro/internal/codepool"
)

// SessionCode marks a transmission spread with a derived session code
// rather than a pool code.
const SessionCode codepool.CodeID = -1

// Transmission describes one on-air message for the jammer.
type Transmission struct {
	// Code is the pool code in use, or SessionCode.
	Code codepool.CodeID
	// SessionKnown reports whether the jammer knows the session code
	// (true only when one endpoint of the session is compromised).
	SessionKnown bool
	// Kind is the protocol message kind, available to jammers that
	// distinguish message types (the paper's "intelligent attack" on the
	// redundancy design distinguishes the four D-NDP messages).
	Kind int
}

// Jammer decides the fate of transmissions. Implementations must be
// deterministic given their RNG stream.
type Jammer interface {
	// TryJam reports whether the jammer destroys this transmission.
	TryJam(tx Transmission) bool
	// Name identifies the jammer model in experiment output.
	Name() string
}

// NoJammer is the benign baseline.
type NoJammer struct{}

// TryJam never jams.
func (NoJammer) TryJam(Transmission) bool { return false }

// Name returns "none".
func (NoJammer) Name() string { return "none" }

// ReactiveJammer implements the reactive model: on every transmission it
// scans its compromised codes, identifies the one in use (assumed to
// succeed within the first 1/(1+μ) of the message, per §IV-B), and jams
// the remainder. It therefore destroys exactly the transmissions whose
// code it knows.
type ReactiveJammer struct {
	compromised *codepool.CodeSet
}

// NewReactiveJammer creates the jammer with the given compromised-code
// knowledge.
func NewReactiveJammer(compromised *codepool.CodeSet) *ReactiveJammer {
	return &ReactiveJammer{compromised: compromised}
}

// TryJam succeeds iff the code in use is known to the jammer.
func (j *ReactiveJammer) TryJam(tx Transmission) bool {
	if tx.Code == SessionCode {
		return tx.SessionKnown
	}
	return j.compromised.Contains(tx.Code)
}

// Name returns "reactive".
func (j *ReactiveJammer) Name() string { return "reactive" }

// RandomJammer implements the random model: on every transmission it picks
// random compromised codes and transmits jamming signals with them. With z
// parallel emitters and the constraint that a jamming signal must cover at
// least μ/(1+μ) of the message, it can try at most ⌊z(1+μ)/μ⌋ distinct
// codes per message, so it hits a compromised target code with probability
// β = min(z(1+μ)/(μ·c), 1) where c is the number of compromised codes
// (Theorem 1).
type RandomJammer struct {
	z           int
	mu          float64
	compromised *codepool.CodeSet
	rng         *rand.Rand
}

// NewRandomJammer creates the jammer. z is the number of parallel jamming
// signals; mu the ECC expansion factor of the victims.
func NewRandomJammer(z int, mu float64, compromised *codepool.CodeSet, rng *rand.Rand) (*RandomJammer, error) {
	if z < 0 {
		return nil, fmt.Errorf("radio: z=%d must be >= 0", z)
	}
	if mu <= 0 {
		return nil, fmt.Errorf("radio: μ=%v must be positive", mu)
	}
	if rng == nil {
		return nil, fmt.Errorf("radio: rng must be set")
	}
	return &RandomJammer{z: z, mu: mu, compromised: compromised, rng: rng}, nil
}

// Tries returns the number of distinct codes the jammer can attempt per
// message, ⌊z(1+μ)/μ⌋.
func (j *RandomJammer) Tries() int {
	return int(float64(j.z) * (1 + j.mu) / j.mu)
}

// TryJam draws the Theorem-1 Bernoulli: the target must be a compromised
// code and among the jammer's random picks for this message.
func (j *RandomJammer) TryJam(tx Transmission) bool {
	if tx.Code == SessionCode {
		// A session code is a fresh 2^N-sized secret; random picks from
		// the pool never match. A compromised endpoint leaks it, though.
		return tx.SessionKnown
	}
	if !j.compromised.Contains(tx.Code) {
		return false
	}
	c := j.compromised.Len()
	if c == 0 {
		return false
	}
	tries := j.Tries()
	if tries >= c {
		return true
	}
	// The target is one specific element of the c known codes; picking
	// `tries` distinct codes uniformly hits it with probability tries/c.
	return j.rng.Float64() < float64(tries)/float64(c)
}

// Name returns "random".
func (j *RandomJammer) Name() string { return "random" }

// IntelligentJammer models the "more intelligent attack" of §V-B: it
// deliberately lets some message kinds through (the HELLO, so the victim
// commits to a spread code) and reactively jams everything else it has the
// code for. The x-sub-session redundancy design exists to defeat exactly
// this adversary.
type IntelligentJammer struct {
	compromised *codepool.CodeSet
	pass        map[int]bool
}

// NewIntelligentJammer creates the jammer; passKinds lists the message
// kinds it deliberately does not jam.
func NewIntelligentJammer(compromised *codepool.CodeSet, passKinds []int) *IntelligentJammer {
	pass := make(map[int]bool, len(passKinds))
	for _, k := range passKinds {
		pass[k] = true
	}
	return &IntelligentJammer{compromised: compromised, pass: pass}
}

// TryJam jams reactively except for the pass-listed kinds.
func (j *IntelligentJammer) TryJam(tx Transmission) bool {
	if j.pass[tx.Kind] {
		return false
	}
	if tx.Code == SessionCode {
		return tx.SessionKnown
	}
	return j.compromised.Contains(tx.Code)
}

// Name returns "intelligent".
func (j *IntelligentJammer) Name() string { return "intelligent" }
