package radio

import (
	"fmt"
	"math/rand"

	"repro/internal/codepool"
	"repro/internal/sim"
)

// This file holds the fault-model adversaries that go beyond §IV-B: a
// partial-time (pulse) jammer in the style of the NR-DCSK anti-jamming
// analysis, and a sweep jammer that rotates its emitters across the
// compromised codes epoch by epoch. Both compose with the Jammer
// interface, so the medium and the protocol engine are oblivious to which
// adversary is active.

// PulseJammer is a duty-cycled (partial-time) adversary: it wraps any
// inner jammer and is only "on" for a fraction ρ of transmissions. While
// on, the inner jammer's verdict applies; while off, every message passes.
// A pulse that covers less than the μ/(1+μ) ECC budget of a frame cannot
// destroy it, so at message level the duty cycle collapses to a Bernoulli
// draw per transmission.
type PulseJammer struct {
	inner Jammer
	duty  float64
	rng   *rand.Rand
}

// NewPulseJammer wraps inner with an on-fraction duty in [0, 1].
func NewPulseJammer(inner Jammer, duty float64, rng *rand.Rand) (*PulseJammer, error) {
	if inner == nil {
		return nil, fmt.Errorf("radio: pulse inner jammer must be set")
	}
	if duty < 0 || duty > 1 {
		return nil, fmt.Errorf("radio: pulse duty %v outside [0, 1]", duty)
	}
	if rng == nil {
		return nil, fmt.Errorf("radio: rng must be set")
	}
	return &PulseJammer{inner: inner, duty: duty, rng: rng}, nil
}

// TryJam draws the duty-cycle Bernoulli, then defers to the inner model.
// The inner verdict is evaluated first so the inner jammer's RNG stream
// advances identically regardless of the pulse phase — same-seed runs with
// different duty cycles stay comparable.
func (j *PulseJammer) TryJam(tx Transmission) bool {
	verdict := j.inner.TryJam(tx)
	return verdict && j.rng.Float64() < j.duty
}

// Name returns "pulse(<inner>)".
func (j *PulseJammer) Name() string { return "pulse(" + j.inner.Name() + ")" }

// SweepJammer rotates a fixed-size window of target codes across its
// compromised set, advancing one window per epoch: with c compromised
// codes and a window of w emitters, epoch e reactively jams the codes
// ranked [e·w mod c, e·w+w) in the sorted compromised enumeration. It
// models an adversary with fewer correlator chains than known codes that
// schedules them round-robin instead of picking randomly.
type SweepJammer struct {
	compromised *codepool.CodeSet
	window      int
	epoch       sim.Time
	clock       func() sim.Time
}

// NewSweepJammer creates the jammer. window is the number of codes it can
// target simultaneously; epoch the rotation period in virtual seconds;
// clock the simulation clock (typically Engine.Now).
func NewSweepJammer(compromised *codepool.CodeSet, window int, epoch sim.Time, clock func() sim.Time) (*SweepJammer, error) {
	if window < 1 {
		return nil, fmt.Errorf("radio: sweep window %d must be >= 1", window)
	}
	if epoch <= 0 {
		return nil, fmt.Errorf("radio: sweep epoch %v must be positive", epoch)
	}
	if clock == nil {
		return nil, fmt.Errorf("radio: sweep clock must be set")
	}
	return &SweepJammer{compromised: compromised, window: window, epoch: epoch, clock: clock}, nil
}

// TryJam destroys a transmission iff its code falls inside the current
// epoch's target window (session codes remain safe unless leaked by a
// compromised endpoint, as for the §IV-B models).
func (j *SweepJammer) TryJam(tx Transmission) bool {
	if tx.Code == SessionCode {
		return tx.SessionKnown
	}
	rank := j.compromised.Rank(tx.Code)
	if rank < 0 {
		return false
	}
	c := j.compromised.Len()
	if j.window >= c {
		return true
	}
	e := int(j.clock() / j.epoch)
	start := (e * j.window) % c
	// Window [start, start+window) on the rank circle of length c.
	off := (rank - start + c) % c
	return off < j.window
}

// Name returns "sweep".
func (j *SweepJammer) Name() string { return "sweep" }
