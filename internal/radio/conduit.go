package radio

// Conduit is the delivery substrate the protocol engine sends and
// receives through: attach a per-node handler, then move opaque frames
// with Broadcast/Unicast. The engine does not care what carries its
// bytes — only that a frame handed to Broadcast reaches the handlers of
// whoever can hear it, and that received frames arrive through the
// attached Handler with the transmitter's identity.
//
// Two implementations exist:
//
//   - *Medium (this package) is the simulated path: virtual-time airtime,
//     jammers, channel faults, interceptors — fully deterministic under
//     the discrete-event engine.
//   - transport.Conduit (internal/transport) is the real path: frames
//     ride loopback/LAN UDP datagrams between authenticated peers, on
//     wall-clock time.
//
// core.Network is written against this interface, so the same protocol
// engine code drives both worlds; see docs/transport.md for the split.
type Conduit interface {
	// Attach registers node's receive handler.
	Attach(node int, h Handler)
	// Broadcast transmits msg from the sender to every reachable node.
	Broadcast(from int, msg Message) error
	// Unicast transmits msg to one node.
	Unicast(from, to int, msg Message) error
	// Stats returns the delivery counters accumulated so far.
	Stats() Stats
}

// Medium is the canonical simulated Conduit.
var _ Conduit = (*Medium)(nil)
