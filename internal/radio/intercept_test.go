package radio

import (
	"testing"

	"repro/internal/sim"
)

func TestMediumInterceptorReplacesDeliveredMessage(t *testing.T) {
	adj := map[int][]int{0: {1}}
	engine := sim.NewEngine()
	m, err := NewMedium(MediumConfig{
		Engine:   engine,
		Jammer:   NoJammer{},
		Adjacent: func(n int) []int { return adj[n] },
		ChipLen:  512, ChipRate: 22e6, Mu: 1,
		Intercept: InterceptorFunc(func(from, to int, msg Message) Message {
			msg.Payload = []byte{0xBA, 0xD0}
			return msg
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	m.Attach(1, func(_ int, msg Message) { got = msg.Payload.([]byte) })
	if err := m.Broadcast(0, Message{Code: 1, PayloadBits: 10, Payload: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0xBA || got[1] != 0xD0 {
		t.Fatalf("delivered payload %x, want the interceptor's replacement", got)
	}
}

func TestMediumInterceptorSkippedWhenJammed(t *testing.T) {
	adj := map[int][]int{0: {1}}
	engine := sim.NewEngine()
	calls := 0
	m, err := NewMedium(MediumConfig{
		Engine:   engine,
		Jammer:   NewReactiveJammer(compromisedSet(5)),
		Adjacent: func(n int) []int { return adj[n] },
		ChipLen:  512, ChipRate: 22e6, Mu: 1,
		Intercept: InterceptorFunc(func(from, to int, msg Message) Message {
			calls++
			return msg
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(1, func(int, Message) {})
	if err := m.Broadcast(0, Message{Code: 5, PayloadBits: 10}); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("interceptor consulted %d times for a jammed frame, want 0", calls)
	}
}

func TestSetInterceptorArmsAfterConstruction(t *testing.T) {
	adj := map[int][]int{0: {1}}
	engine := sim.NewEngine()
	m, err := NewMedium(MediumConfig{
		Engine:   engine,
		Jammer:   NoJammer{},
		Adjacent: func(n int) []int { return adj[n] },
		ChipLen:  512, ChipRate: 22e6, Mu: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	m.Attach(1, func(int, Message) {})
	m.SetInterceptor(InterceptorFunc(func(from, to int, msg Message) Message {
		seen++
		return msg
	}))
	if err := m.Broadcast(0, Message{Code: 1, PayloadBits: 10}); err != nil {
		t.Fatal(err)
	}
	m.SetInterceptor(nil)
	if err := m.Broadcast(0, Message{Code: 1, PayloadBits: 10}); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatalf("interceptor saw %d frames, want exactly the one sent while armed", seen)
	}
}
