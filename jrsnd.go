// Package jrsnd is a from-scratch Go implementation of JR-SND —
// Jamming-Resilient Secure Neighbor Discovery in Mobile Ad Hoc Networks
// (Zhang, Zhang, Huang; ICDCS 2011) — together with every substrate the
// paper depends on and the full evaluation harness that regenerates its
// tables and figures.
//
// JR-SND combines Direct Sequence Spread Spectrum with random spread-code
// pre-distribution: before deployment, a single MANET authority loads each
// node with m spread codes drawn from a secret pool such that any two
// nodes share a code with high probability and each code is known to at
// most l nodes. Nodes then discover and mutually authenticate each other
// despite omnipresent jammers, either directly over a shared code (D-NDP,
// §V-B of the paper) or through a multi-hop path of already-discovered
// neighbors (M-NDP, §V-C).
//
// # Layers
//
//   - Theory: closed-form performance model (Theorems 1–4); see
//     DefaultParams, DNDPBounds, DNDPLatency, MNDPLowerBound, MNDPLatency.
//   - Protocol engine: an event-driven simulation of the full protocol —
//     HELLO/CONFIRM/authentication exchanges, the x-sub-session redundancy
//     design, M-NDP signed request flooding, the DoS revocation defence —
//     over a message-level radio with random/reactive/intelligent jammers;
//     see New and NetworkConfig.
//   - Chip level: a real DSSS PHY (±1 chip sequences, correlation
//     de-spreading, sliding-window synchronization, Reed–Solomon erasure
//     coding) validating the message-level jamming model; see the
//     internal/dsss and internal/rs packages and the jamming-sweep example.
//   - Experiments: Monte-Carlo campaigns that reproduce every figure of
//     the paper's evaluation; see Fig2a through Fig5b, DSSSValidation and
//     DoSExperiment.
//
// # Quick start
//
//	params := jrsnd.DefaultParams()
//	params.N, params.L, params.Q = 50, 10, 2
//	net, err := jrsnd.New(jrsnd.NetworkConfig{
//		Params: params,
//		Seed:   1,
//		Jammer: jrsnd.JamReactive,
//	})
//	if err != nil { ... }
//	if _, err := net.CompromiseRandom(params.Q); err != nil { ... }
//	if err := net.RunDNDP(1); err != nil { ... }   // D-NDP round
//	if err := net.RunMNDP(1); err != nil { ... }   // M-NDP round
//	for _, d := range net.Discoveries() { ... }
//
// See the examples directory for complete runnable programs and
// EXPERIMENTS.md for the paper-versus-measured record.
package jrsnd

import (
	"io"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Params is the full Table I parameter set of the paper.
type Params = analysis.Params

// DefaultParams returns the paper's default evaluation parameters
// (Table I).
func DefaultParams() Params { return analysis.Defaults() }

// Network is a simulated JR-SND deployment: nodes with pre-distributed
// spread codes and ID-based keys, a shared radio medium, and a configurable
// jammer.
type Network = core.Network

// NetworkConfig configures a deployment; see core.NetworkConfig.
type NetworkConfig = core.NetworkConfig

// Node is one MANET node running JR-SND.
type Node = core.Node

// Neighbor is an authenticated logical-neighbor relationship.
type Neighbor = core.Neighbor

// PairDiscovery records a completed mutual discovery.
type PairDiscovery = core.PairDiscovery

// DoSReport aggregates the verification work a DoS attack forced.
type DoSReport = core.DoSReport

// EpochConfig and EpochStats drive Network.RunEpochs, the periodic
// mobility + re-discovery loop.
type (
	EpochConfig = core.EpochConfig
	EpochStats  = core.EpochStats
)

// JammerKind selects the adversary model of §IV-B.
type JammerKind = core.JammerKind

// Jammer models for NetworkConfig.Jammer.
const (
	JamNone        = core.JamNone
	JamRandom      = core.JamRandom
	JamReactive    = core.JamReactive
	JamIntelligent = core.JamIntelligent
)

// Discovery methods reported in PairDiscovery.Via.
const (
	ViaDNDP = core.ViaDNDP
	ViaMNDP = core.ViaMNDP
)

// New creates a simulated JR-SND deployment. Nodes are issued keys and
// spread codes and attached to the medium; call CompromiseRandom and the
// Run methods to exercise the protocols.
func New(cfg NetworkConfig) (*Network, error) { return core.NewNetwork(cfg) }

// Theory — the closed-form model of §VI-A.

// PrShared returns Pr[x] (Eq. 1): the probability two nodes share exactly
// x spread codes.
func PrShared(p Params, x int) float64 { return analysis.PrShared(p, x) }

// Alpha returns α (Eq. 2): the probability any given pool code is
// compromised after q node compromises.
func Alpha(p Params) float64 { return analysis.Alpha(p) }

// DNDPBounds returns (P̂−, P̂+) of Theorem 1: the D-NDP discovery
// probability under reactive (lower) and random (upper) jamming.
func DNDPBounds(p Params) (lower, upper float64) { return analysis.DNDPBounds(p) }

// DNDPLatency returns T̄_D of Theorem 2.
func DNDPLatency(p Params) float64 { return analysis.DNDPLatency(p) }

// MNDPLowerBound returns the Theorem 3 bound on P̂_M for ν = 2 given the
// D-NDP probability and the average physical degree g.
func MNDPLowerBound(pd, g float64) float64 { return analysis.MNDPLowerBound(pd, g) }

// MNDPLatency returns T̄_M of Theorem 4 for a ν-hop path and degree g.
func MNDPLatency(p Params, nu int, g float64) float64 { return analysis.MNDPLatency(p, nu, g) }

// Combined returns the JR-SND totals P̂ and T̄ from the theory model.
func Combined(p Params) (pHat, tBar float64) { return analysis.Combined(p) }

// Experiments — Monte-Carlo reproductions of the paper's figures.

// Figure is the reproduction of one paper figure or table.
type Figure = experiment.Figure

// Series is one plotted curve of a Figure.
type Series = experiment.Series

// SweepConfig configures a figure reproduction run.
type SweepConfig = experiment.SweepConfig

// PointConfig and PointMeasure drive single-point campaigns.
type (
	PointConfig  = experiment.PointConfig
	PointMeasure = experiment.PointMeasure
)

// JammerModel selects the adversary for campaign experiments.
type JammerModel = experiment.JammerModel

// Campaign jammer models.
const (
	CampaignJamNone     = experiment.JamNone
	CampaignJamRandom   = experiment.JamRandom
	CampaignJamReactive = experiment.JamReactive
)

// MeasurePoint runs the Monte-Carlo campaign for one parameter point.
func MeasurePoint(cfg PointConfig) (PointMeasure, error) { return experiment.MeasurePoint(cfg) }

// Fig2a reproduces Fig. 2(a): impact of m on P̂.
func Fig2a(cfg SweepConfig) (Figure, error) { return experiment.Fig2a(cfg) }

// Fig2b reproduces Fig. 2(b): impact of m on T̄.
func Fig2b(cfg SweepConfig) (Figure, error) { return experiment.Fig2b(cfg) }

// Fig3a reproduces Fig. 3(a): P̂ versus l.
func Fig3a(cfg SweepConfig) (Figure, error) { return experiment.Fig3a(cfg) }

// Fig3b reproduces Fig. 3(b): P̂ versus n.
func Fig3b(cfg SweepConfig) (Figure, error) { return experiment.Fig3b(cfg) }

// Fig4 reproduces Fig. 4 at the given l (40 for 4(a), 20 for 4(b)).
func Fig4(cfg SweepConfig, l int) (Figure, error) { return experiment.Fig4(cfg, l) }

// Fig5a reproduces Fig. 5(a): impact of ν on P̂ at P̂_D ≈ 0.2.
func Fig5a(cfg SweepConfig) (Figure, error) { return experiment.Fig5a(cfg) }

// Fig5b reproduces Fig. 5(b): T̄ versus ν.
func Fig5b(cfg SweepConfig) (Figure, error) { return experiment.Fig5b(cfg) }

// DSSSValidation sweeps the chip-level jam fraction, validating the
// μ/(1+μ) ECC contract the jamming model relies on.
func DSSSValidation(seed int64, trialsPerPoint int) (Figure, error) {
	return experiment.DSSSValidation(seed, trialsPerPoint)
}

// DoSExperiment measures the verification work a compromised-code DoS
// attacker can force, with and without the §V-D revocation defence.
func DoSExperiment(seed int64, rounds int) (Figure, error) {
	return experiment.DoSExperiment(seed, rounds)
}

// Table1 reproduces Table I with the derived §V-B quantities.
func Table1() Figure { return experiment.Table1() }

// PrintFigure renders a figure as an aligned text table.
func PrintFigure(w io.Writer, f Figure) error { return experiment.Print(w, f) }

// WriteFigureCSV emits a figure as CSV.
func WriteFigureCSV(w io.Writer, f Figure) error { return experiment.WriteCSV(w, f) }

// Observability — structured protocol-event tracing (NetworkConfig.Trace)
// and the metric registry (NetworkConfig.Metrics).

// TraceSink receives protocol events; implementations include the bounded
// TraceRecorder and the streaming TraceJSONLWriter.
type TraceSink = trace.Sink

// TraceRecorder collects protocol events during a simulation.
type TraceRecorder = trace.Recorder

// TraceEvent is one recorded protocol event.
type TraceEvent = trace.Event

// TraceJSONLWriter streams protocol events as JSON Lines.
type TraceJSONLWriter = trace.JSONLWriter

// NewTraceRecorder creates a bounded event recorder to pass in
// NetworkConfig.Trace.
func NewTraceRecorder(capacity int) (*TraceRecorder, error) { return trace.NewRecorder(capacity) }

// NewTraceJSONLWriter creates a streaming JSONL sink for
// NetworkConfig.Trace; call Close when the run finishes.
func NewTraceJSONLWriter(w io.Writer) *TraceJSONLWriter { return trace.NewJSONLWriter(w) }

// MultiTrace fans protocol events out to several sinks at once.
func MultiTrace(sinks ...TraceSink) TraceSink { return trace.Multi(sinks...) }

// MetricsRegistry collects counters, gauges and histograms from an
// instrumented deployment; pass one in NetworkConfig.Metrics and call
// Snapshot after the run.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a point-in-time copy of a registry, mergeable across
// Monte-Carlo runs and exportable as Prometheus text or JSON.
type MetricsSnapshot = metrics.Snapshot

// NewMetricsRegistry creates an empty metric registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.New() }

// WriteMetricsPrometheus renders a snapshot in the Prometheus text format.
func WriteMetricsPrometheus(w io.Writer, s MetricsSnapshot) error {
	return metrics.WritePrometheus(w, s)
}

// WriteMetricsJSON renders a snapshot as indented JSON.
func WriteMetricsJSON(w io.Writer, s MetricsSnapshot) error { return metrics.WriteJSON(w, s) }

// Baselines — the schemes the paper argues against (§I/§II).

// Baseline scheme types; see internal/baseline for the comparison
// experiments built on them (BaselineQ, BaselineLatency, BaselineDoS in
// cmd/jrsnd-sim).
type (
	BaselineCommonCode    = baseline.CommonCode
	BaselinePairwiseCode  = baseline.PairwiseCode
	BaselinePublicCodeSet = baseline.PublicCodeSet
	BaselineUFH           = baseline.UFH
)

// DefaultUFH returns UFH parameters in the regime of the paper's ref [3].
func DefaultUFH() BaselineUFH { return baseline.DefaultUFH() }

// ExtAntennas, ExtAdaptiveNu and GoldComparison run the extension
// experiments (the paper's named future work and code-family comparison).
func ExtAntennas(base Params) (Figure, error) { return experiment.ExtAntennas(base) }

// ExtAdaptiveNu measures the dynamic-ν controller of §VI-B.
func ExtAdaptiveNu(cfg SweepConfig, targets []float64, maxNu int) (Figure, error) {
	return experiment.ExtAdaptiveNu(cfg, targets, maxNu)
}

// GoldComparison contrasts pseudorandom and Gold spreading codes.
func GoldComparison(seed int64, familySize, trials int) (Figure, error) {
	return experiment.GoldComparison(seed, familySize, trials)
}

// BaselineQ, BaselineLatency and BaselineDoS quantify the §I/§II
// comparisons.
func BaselineQ(cfg SweepConfig) (Figure, error) { return experiment.BaselineQ(cfg) }

// BaselineLatency compares D-NDP latency with UFH key establishment.
func BaselineLatency(base Params, seed int64, samples int) (Figure, error) {
	return experiment.BaselineLatency(base, seed, samples)
}

// BaselineDoS contrasts DoS verification loads across schemes.
func BaselineDoS(base Params) (Figure, error) { return experiment.BaselineDoS(base) }
