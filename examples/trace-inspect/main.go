// Trace inspection: record every protocol event of a small discovery run
// — transmissions with their spread codes, jam verdicts, discoveries,
// revocations — and print the timeline. Useful for understanding the
// four-message D-NDP dance and exactly which copies the jammer kills.
package main

import (
	"fmt"
	"os"

	jrsnd "repro"
	"repro/internal/field"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trace-inspect:", err)
		os.Exit(1)
	}
}

func run() error {
	rec, err := jrsnd.NewTraceRecorder(10000)
	if err != nil {
		return err
	}
	params := jrsnd.DefaultParams()
	params.N = 4
	params.M = 4
	params.L = 4 // everyone shares every code
	params.Q = 0
	params.FieldWidth, params.FieldHeight = 500, 500

	net, err := jrsnd.New(jrsnd.NetworkConfig{
		Params: params,
		Seed:   9,
		Jammer: jrsnd.JamReactive,
		Trace:  rec,
		Positions: []field.Point{
			{X: 100, Y: 100}, {X: 200, Y: 100}, {X: 150, Y: 200}, {X: 200, Y: 200},
		},
	})
	if err != nil {
		return err
	}
	// Capturing node 3 hands its whole code set (the whole pool, l = n)
	// to the jammer, so every pool-code transmission gets jammed — watch
	// the timeline show it.
	if err := net.Compromise([]int{3}); err != nil {
		return err
	}
	if err := net.RunDNDP(1); err != nil {
		return err
	}
	fmt.Println("--- full-compromise run: every HELLO jammed, no discoveries ---")
	if err := rec.Dump(os.Stdout); err != nil {
		return err
	}

	// Fresh run without compromise: the full four-message exchange.
	rec2, err := jrsnd.NewTraceRecorder(10000)
	if err != nil {
		return err
	}
	params.N = 2
	params.L = 2
	net2, err := jrsnd.New(jrsnd.NetworkConfig{
		Params: params,
		Seed:   10,
		Jammer: jrsnd.JamReactive,
		Trace:  rec2,
		Positions: []field.Point{
			{X: 100, Y: 100}, {X: 250, Y: 100},
		},
	})
	if err != nil {
		return err
	}
	if err := net2.RunDNDP(1); err != nil {
		return err
	}
	fmt.Println("\n--- clean two-node run: HELLO → CONFIRM → AUTH1 → AUTH2 → discovery ---")
	if err := rec2.Dump(os.Stdout); err != nil {
		return err
	}
	counts := rec2.Counts()
	fmt.Printf("\nevent counts: %d tx, %d discoveries\n",
		counts[1 /* KindTx */], counts[4 /* KindDiscovery */])
	return nil
}
