// Chip-level D-NDP: the complete §V-B four-message exchange carried out on
// the real air interface — 512-chip spread codes, Reed–Solomon framing,
// sliding-window correlation receivers — with a reactive jammer destroying
// every frame whose code it knows. One shared code is compromised, one is
// clean; the exchange survives on the clean one and finishes with both
// endpoints deriving the same secret session spread code.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/chips"
	"repro/internal/dsss"
	"repro/internal/ibc"
	"repro/internal/phy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chip-dndp:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))
	auth, err := ibc.NewAuthority(ibc.AuthorityConfig{Rand: rng})
	if err != nil {
		return err
	}
	keyA, err := auth.Issue(10, rng)
	if err != nil {
		return err
	}
	keyB, err := auth.Issue(20, rng)
	if err != nil {
		return err
	}
	const chipLen = 512
	sharedClean := chips.NewRandom(rng, chipLen)
	sharedDirty := chips.NewRandom(rng, chipLen) // leaked to the jammer
	alice, err := phy.NewNode(phy.Config{Key: keyA, Codes: []chips.Sequence{sharedClean, sharedDirty}, Mu: 1, Tau: 0.15})
	if err != nil {
		return err
	}
	bob, err := phy.NewNode(phy.Config{Key: keyB, Codes: []chips.Sequence{sharedClean, sharedDirty}, Mu: 1, Tau: 0.15})
	if err != nil {
		return err
	}
	fmt.Println("two nodes share 2 codes; the jammer knows one of them")

	// relay transmits payload spread with code, lets the reactive jammer
	// act, and has the receiver scan for it.
	relay := func(step string, tx, rx *phy.Node, payload []byte, code chips.Sequence) ([]byte, bool) {
		sig, err := tx.Transmit(payload, code)
		if err != nil {
			fmt.Printf("  %-28s transmit error: %v\n", step, err)
			return nil, false
		}
		ch, _ := dsss.NewChannel(sig.Len() + 1000)
		ch.Add(sig, 500)
		if code.Equal(sharedDirty) {
			// Reactive jam: identify within 1/(1+μ), invert the rest.
			from := sig.Len() / 2 * 9 / 10
			ch.AddInverted(sig.Slice(from, sig.Len()), 500+from)
		}
		got, _, err := rx.Receive(ch.Samples(), len(payload))
		if err != nil {
			fmt.Printf("  %-28s JAMMED (%v)\n", step, err)
			return nil, false
		}
		fmt.Printf("  %-28s delivered (%d chips on air)\n", step, sig.Len())
		return got, true
	}

	fmt.Println("\nsub-session on the compromised code:")
	if _, ok := relay("HELLO (dirty code)", alice, bob, alice.Hello(), sharedDirty); ok {
		return fmt.Errorf("jammed frame decoded — jammer model broken")
	}

	fmt.Println("\nsub-session on the clean code:")
	hello, ok := relay("HELLO", alice, bob, alice.Hello(), sharedClean)
	if !ok {
		return fmt.Errorf("clean HELLO lost")
	}
	_, sender, err := phy.ParseID(hello)
	if err != nil {
		return err
	}
	fmt.Printf("  bob identified initiator: node %d\n", sender)

	if _, ok := relay("CONFIRM", bob, alice, bob.Confirm(), sharedClean); !ok {
		return fmt.Errorf("CONFIRM lost")
	}

	nA := []byte{0x01, 0x02, 0x03}
	auth1, ok := relay("AUTH1 {ID_A, n_A, MAC}", alice, bob, alice.Auth(phy.TypeAuth1, bob.ID(), nA, 20), sharedClean)
	if !ok {
		return fmt.Errorf("AUTH1 lost")
	}
	if _, _, err := bob.VerifyAuth(auth1); err != nil {
		return fmt.Errorf("bob rejected AUTH1: %w", err)
	}
	fmt.Println("  bob verified alice's MAC (pairwise key from ID alone)")

	nB := []byte{0x0A, 0x0B, 0x0C}
	auth2, ok := relay("AUTH2 {ID_B, n_B, MAC}", bob, alice, bob.Auth(phy.TypeAuth2, alice.ID(), nB, 20), sharedClean)
	if !ok {
		return fmt.Errorf("AUTH2 lost")
	}
	if _, _, err := alice.VerifyAuth(auth2); err != nil {
		return fmt.Errorf("alice rejected AUTH2: %w", err)
	}
	fmt.Println("  alice verified bob's MAC — mutual authentication complete")

	sessA, err := alice.SessionCode(bob.ID())
	if err != nil {
		return err
	}
	sessB, err := bob.SessionCode(alice.ID())
	if err != nil {
		return err
	}
	fmt.Printf("\nsession spread code C_AB = h_K(n_A⊗n_B): endpoints agree = %v\n", sessA.Equal(sessB))

	if msg, ok := relay("post-discovery traffic", alice, bob, []byte("rendezvous at dawn"), sessA); ok {
		fmt.Printf("  secured channel carries: %q (jammer cannot touch the session code)\n", msg)
	}
	return nil
}
