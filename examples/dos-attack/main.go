// DoS attack (§V-D): a captured node floods its neighborhood with fake
// authentication messages under compromised spread codes, trying to burn
// the victims' CPU on key computations and MAC verifications. The example
// runs the same attack against an undefended network and against one using
// the local revocation counters, and shows the (l−1)·γ work bound.
package main

import (
	"fmt"
	"os"

	jrsnd "repro"
	"repro/internal/field"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dos-attack:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		nodes  = 16
		rounds = 40
		gamma  = 5
	)
	fmt.Printf("DoS attack: 1 captured node, %d injection waves against %d neighbors\n\n", rounds, nodes-1)
	fmt.Println("defence        injected  key-comps  mac-verifies  revoked-codes")

	var undefended, defended jrsnd.DoSReport
	for _, cfg := range []struct {
		label string
		gamma int
		out   *jrsnd.DoSReport
	}{
		{"none (γ=∞)", 1 << 20, &undefended},
		{fmt.Sprintf("γ=%d", gamma), gamma, &defended},
	} {
		report, params, err := attack(cfg.gamma, nodes, rounds)
		if err != nil {
			return err
		}
		*cfg.out = report
		fmt.Printf("%-13s  %-8d  %-9d  %-12d  %d\n",
			cfg.label, report.Injected, report.KeyComputations, report.MACVerifications, report.RevokedCodes)
		if cfg.gamma == gamma {
			// A victim revokes a code once its counter exceeds γ, so each
			// compromised code burns at most γ+1 verifications per victim:
			// (l−1)·(γ+1) network-wide per code (§V-D, with the counter
			// crossing made explicit).
			bound := (params.L - 1) * (gamma + 1) * params.M
			fmt.Printf("\nwith γ=%d each code costs each victim at most γ+1 = %d verifications\n", gamma, gamma+1)
			status := "✓"
			if report.MACVerifications > bound {
				status = "✗ BOUND VIOLATED"
			}
			fmt.Printf("network-wide bound over all %d codes: (l−1)·(γ+1)·m = %d ≥ measured %d %s\n",
				params.M, bound, report.MACVerifications, status)
		}
	}
	saved := 1 - float64(defended.MACVerifications)/float64(undefended.MACVerifications)
	fmt.Printf("\nrevocation eliminated %.0f%% of the forced verification work\n", 100*saved)
	return nil
}

func attack(gamma, nodes, rounds int) (jrsnd.DoSReport, jrsnd.Params, error) {
	params := jrsnd.DefaultParams()
	params.N = nodes
	params.M = 6
	params.L = nodes // dense sharing: every victim holds the attacker's codes
	params.Q = 0
	params.Gamma = gamma
	params.FieldWidth, params.FieldHeight = 1000, 1000

	// Everyone within range of the attacker.
	positions := make([]field.Point, nodes)
	for i := range positions {
		positions[i] = field.Point{X: 300 + float64(i%4)*60, Y: 300 + float64(i/4)*60}
	}
	net, err := jrsnd.New(jrsnd.NetworkConfig{
		Params:    params,
		Seed:      5,
		Jammer:    jrsnd.JamNone,
		Positions: positions,
	})
	if err != nil {
		return jrsnd.DoSReport{}, params, err
	}
	attacker := nodes - 1
	if err := net.Compromise([]int{attacker}); err != nil {
		return jrsnd.DoSReport{}, params, err
	}
	report, err := net.RunDoSAttack(attacker, rounds)
	return report, params, err
}
