// Metrics dump: run two small instrumented deployments under reactive
// jamming, merge their metric snapshots — counters and histograms sum,
// gauges keep the high-water mark — and print the aggregate in the
// Prometheus text format. The same aggregation powers
// jrsnd-report -metrics across whole campaign directories.
package main

import (
	"fmt"
	"os"

	jrsnd "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metrics-dump:", err)
		os.Exit(1)
	}
}

func run() error {
	params := jrsnd.DefaultParams()
	params.N, params.M, params.L, params.Q = 30, 10, 5, 3
	params.FieldWidth, params.FieldHeight = 700, 700

	merged := jrsnd.MetricsSnapshot{}
	for _, seed := range []int64{1, 2} {
		reg := jrsnd.NewMetricsRegistry()
		net, err := jrsnd.New(jrsnd.NetworkConfig{
			Params:  params,
			Seed:    seed,
			Jammer:  jrsnd.JamReactive,
			Metrics: reg,
		})
		if err != nil {
			return err
		}
		if _, err := net.CompromiseRandom(params.Q); err != nil {
			return err
		}
		if err := net.RunDNDP(1); err != nil {
			return err
		}
		if err := net.RunMNDP(1); err != nil {
			return err
		}
		if err := merged.Merge(reg.Snapshot()); err != nil {
			return err
		}
	}

	if err := jrsnd.WriteMetricsPrometheus(os.Stdout, merged); err != nil {
		return err
	}
	lat := merged.Histograms["jrsnd_core_discovery_latency_seconds"]
	fmt.Printf("\n# %d discoveries across both runs; latency p50 %.3fs, p95 %.3fs\n",
		lat.Count, lat.Quantile(0.5), lat.Quantile(0.95))
	return nil
}
