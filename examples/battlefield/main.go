// Battlefield: the deployment the paper's introduction motivates — a
// single-authority military MANET of platoons moving through a hostile
// area under reactive jamming. Nodes periodically re-run neighbor
// discovery as mobility creates new encounters; the example reports, per
// epoch, how many of the current physical links are secured (discovered
// and mutually authenticated).
package main

import (
	"fmt"
	"math/rand"
	"os"

	jrsnd "repro"
	"repro/internal/field"
	"repro/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "battlefield:", err)
		os.Exit(1)
	}
}

func run() error {
	params := jrsnd.DefaultParams()
	params.N = 120 // 6 platoons of 20
	params.M = 8
	params.L = 12
	params.Q = 10
	params.Nu = 3
	params.FieldWidth, params.FieldHeight = 3000, 3000
	params.Range = 300

	deploy, err := field.New(params.FieldWidth, params.FieldHeight)
	if err != nil {
		return err
	}
	layoutRng := rand.New(rand.NewSource(7))
	positions, err := scenario.Platoons(deploy, 6, 20, 180, layoutRng)
	if err != nil {
		return err
	}

	net, err := jrsnd.New(jrsnd.NetworkConfig{
		Params:    params,
		Seed:      7,
		Jammer:    jrsnd.JamReactive,
		Positions: positions,
		GPSFilter: true, // eliminate M-NDP false positives (§V-C)
	})
	if err != nil {
		return err
	}
	compromised, err := net.CompromiseRandom(params.Q)
	if err != nil {
		return err
	}
	fmt.Printf("battlefield: 6 platoons × 20 soldiers on %0.fx%.0f m², jammer holds %d/%d codes (nodes %v captured)\n\n",
		params.FieldWidth, params.FieldHeight, net.CompromisedCodes(), net.Pool().S(), compromised)

	// Soldiers move at 1-3 m/s with short pauses (random waypoint).
	mob, err := field.NewWaypoint(field.WaypointConfig{
		Field:    deploy,
		MinSpeed: 1,
		MaxSpeed: 3,
		Pause:    5,
		Rand:     rand.New(rand.NewSource(99)),
	}, positions)
	if err != nil {
		return err
	}

	// The epoch loop: step mobility one minute, expire monitor-timed-out
	// sessions (§IV-A), re-run both discovery protocols.
	stats, err := net.RunEpochs(jrsnd.EpochConfig{
		Mobility:    mob,
		StepSeconds: 60,
		Epochs:      5,
		Window:      1,
		MNDP:        true,
	})
	if err != nil {
		return err
	}
	fmt.Println("epoch  physical-links  secured  coverage  expired  new-this-epoch")
	for _, s := range stats {
		fmt.Printf("%-5d  %-14d  %-7d  %6.1f%%  %-7d  %d\n",
			s.Epoch, s.PhysicalLinks, s.SecuredLinks, 100*s.Coverage(), s.Expired, s.NewDiscoveries)
	}

	fmt.Println("\nmobility keeps creating encounters; every epoch's re-run secures the new links.")
	return nil
}
