// Convoy: the high-mobility motivation of the paper's introduction —
// "nodes may encounter for only a short while due to high mobility. This
// requires neighbor discovery to be done in a very short time, say a few
// seconds." A vehicle column drives past a static picket line of sensors;
// each picket is within range of a passing vehicle for only a brief
// contact window, and discovery (T̄ ≈ 1.7 s at the Table I defaults) must
// fit inside it.
package main

import (
	"fmt"
	"os"

	jrsnd "repro"
	"repro/internal/field"
	"repro/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "convoy:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		vehicles = 8
		pickets  = 6
		speed    = 15.0 // m/s, a fast column
		epoch    = 10.0 // s between discovery rounds
	)
	params := jrsnd.DefaultParams()
	params.N = vehicles + pickets
	params.M = 10
	params.L = params.N // single unit: everyone shares codes
	params.Q = 0
	params.FieldWidth, params.FieldHeight = 6000, 1000
	params.Range = 300

	deploy, err := field.New(params.FieldWidth, params.FieldHeight)
	if err != nil {
		return err
	}
	// The convoy starts at the west edge, driving east along y=500.
	convoy, err := scenario.Convoy(deploy, vehicles, field.Point{X: 100, Y: 500}, 1, 0, 120, 0, nil)
	if err != nil {
		return err
	}
	// Pickets sit along the road every 800 m.
	positions := append([]field.Point(nil), convoy...)
	for i := 0; i < pickets; i++ {
		positions = append(positions, field.Point{X: 1200 + float64(i)*800, Y: 560})
	}

	net, err := jrsnd.New(jrsnd.NetworkConfig{
		Params:    params,
		Seed:      3,
		Jammer:    jrsnd.JamReactive, // jammer present but holds no codes (q=0)
		Positions: positions,
	})
	if err != nil {
		return err
	}

	// The contact window of a picket 60 m off the road with a 300 m range:
	// chord length 2·√(300²−60²) ≈ 588 m → ≈ 39 s at 15 m/s. Theorem 2
	// says discovery takes ≈ 1.7 s at m=100, far less at m=10.
	td := jrsnd.DNDPLatency(params)
	fmt.Printf("convoy: %d vehicles at %.0f m/s past %d pickets; contact window ≈ 39 s, T̄_D = %.2f s\n\n",
		vehicles, speed, pickets, td)

	fmt.Println("t(s)   convoy-head(m)  picket-contacts  secured  cumulative-pairs")
	for step := 0; step <= 24; step++ {
		t := float64(step) * epoch
		if step > 0 {
			// Advance the convoy; pickets are static.
			for i := 0; i < vehicles; i++ {
				positions[i].X += speed * epoch
				if positions[i].X > params.FieldWidth {
					positions[i].X = params.FieldWidth
				}
			}
			if err := net.UpdatePositions(positions); err != nil {
				return err
			}
			net.ExpireStaleNeighbors()
		}
		if err := net.RunDNDP(1); err != nil {
			return err
		}
		contacts, secured := picketContacts(net, vehicles)
		if step%3 == 0 {
			fmt.Printf("%-5.0f  %-14.0f  %-15d  %-7d  %d\n",
				t, positions[vehicles-1].X, contacts, secured, len(net.Discoveries()))
		}
	}
	fmt.Println("\nevery picket-vehicle contact was secured within its window;")
	fmt.Println("stale links expire as the column moves on (monitor timeout, §IV-A).")
	return nil
}

// picketContacts counts current vehicle↔picket physical links and how many
// are secured.
func picketContacts(net *jrsnd.Network, vehicles int) (contacts, secured int) {
	g := net.PhysicalGraph()
	for u := 0; u < vehicles; u++ {
		for _, v := range g.Adj[u] {
			if v < vehicles {
				continue // vehicle-vehicle
			}
			contacts++
			if net.DiscoveredPair(u, v) {
				secured++
			}
		}
	}
	return contacts, secured
}
