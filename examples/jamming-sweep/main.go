// Jamming sweep: two independent views of JR-SND's jamming resilience.
//
//  1. Chip level — a real DSSS frame (N=512 chips, τ=0.15, Reed–Solomon
//     μ=1) is jammed with the correct spread code over a growing fraction
//     of its airtime; decoding survives below the μ/(1+μ) = 50% budget and
//     dies above it, validating the message-level jamming model.
//  2. Network level — the full Monte-Carlo campaign sweeps the number of
//     compromised nodes q and reports the discovery probabilities of
//     D-NDP, M-NDP and JR-SND against the Theorem 1/3 predictions.
package main

import (
	"fmt"
	"os"

	jrsnd "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jamming-sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("--- chip-level: frame decode vs same-code jam fraction ---")
	fig, err := jrsnd.DSSSValidation(1, 30)
	if err != nil {
		return err
	}
	if err := jrsnd.PrintFigure(os.Stdout, fig); err != nil {
		return err
	}

	fmt.Println("\n--- network-level: discovery probability vs compromised nodes q ---")
	params := jrsnd.DefaultParams()
	params.N = 400
	params.L = 20
	params.FieldWidth, params.FieldHeight = 2250, 2250 // keep density ≈ paper's
	fmt.Println("q    P̂_D(sim)  P̂_D(thy)  P̂_M(sim)  JR-SND(sim)")
	for _, q := range []int{0, 4, 8, 12, 16, 20} {
		p := params
		p.Q = q
		m, err := jrsnd.MeasurePoint(jrsnd.PointConfig{
			Params: p,
			Jammer: jrsnd.CampaignJamReactive,
			Runs:   10,
			Seed:   1,
		})
		if err != nil {
			return err
		}
		lower, _ := jrsnd.DNDPBounds(p)
		fmt.Printf("%-3d  %-9.3f  %-9.3f  %-9.3f  %.3f\n", q, m.PD, lower, m.PM, m.PHat)
	}
	fmt.Println("\nshape check: both curves fall with q; JR-SND stays above D-NDP thanks to M-NDP.")
	return nil
}
