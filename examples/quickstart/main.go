// Quickstart: a 40-node MANET under reactive jamming with two compromised
// nodes. Runs one D-NDP round and one M-NDP round, then compares the
// measured discovery rate with the paper's theory (Theorems 1 and 3).
package main

import (
	"fmt"
	"os"

	jrsnd "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	params := jrsnd.DefaultParams()
	params.N = 40 // nodes
	params.M = 12 // codes per node
	params.L = 10 // nodes sharing each code
	params.Q = 2  // compromised nodes
	params.Nu = 2 // M-NDP hop bound
	params.FieldWidth, params.FieldHeight = 1200, 1200
	params.Range = 300

	net, err := jrsnd.New(jrsnd.NetworkConfig{
		Params: params,
		Seed:   42,
		Jammer: jrsnd.JamReactive,
	})
	if err != nil {
		return err
	}
	compromised, err := net.CompromiseRandom(params.Q)
	if err != nil {
		return err
	}
	fmt.Printf("deployment: %d nodes, %d physical links, avg degree %.1f\n",
		net.NumNodes(), net.PhysicalGraph().NumEdges(), net.PhysicalGraph().AvgDegree())
	fmt.Printf("adversary:  compromised nodes %v → %d of %d pool codes known to the jammer\n\n",
		compromised, net.CompromisedCodes(), net.Pool().S())

	if err := net.RunDNDP(1); err != nil {
		return err
	}
	dndp := len(net.Discoveries())
	fmt.Printf("after D-NDP: %d pairs mutually discovered and authenticated\n", dndp)

	if err := net.RunMNDP(1); err != nil {
		return err
	}
	all := net.Discoveries()
	fmt.Printf("after M-NDP: %d pairs total (%d added via multi-hop)\n\n", len(all), len(all)-dndp)

	// Count discoverable links: physical edges between honest nodes.
	honest := map[int]bool{}
	for _, c := range compromised {
		honest[c] = true
	}
	edges := 0
	discovered := 0
	g := net.PhysicalGraph()
	for u := 0; u < net.NumNodes(); u++ {
		if honest[u] {
			continue
		}
		for _, v := range g.Adj[u] {
			if v <= u || honest[v] {
				continue
			}
			edges++
			if net.DiscoveredPair(u, v) {
				discovered++
			}
		}
	}
	measured := float64(discovered) / float64(edges)
	lower, upper := jrsnd.DNDPBounds(params)
	fmt.Printf("discovery probability over honest physical links: %.3f (%d/%d)\n", measured, discovered, edges)
	fmt.Printf("theory: D-NDP alone in [%.3f, %.3f]; with M-NDP the paper predicts near-1\n", lower, upper)

	fmt.Println("\nsample neighbor table (node 0):")
	for _, nb := range net.Node(0).Neighbors() {
		fmt.Printf("  peer %-4d via %-6s at t=%.3fs\n", nb.ID, nb.Via, float64(nb.DiscoveredAt))
	}
	return nil
}
