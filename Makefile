GO ?= go
FUZZTIME ?= 30s

.PHONY: build test tier1 race bench report chaos fuzz vuln

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# tier1 is the full quality gate: vet plus the whole suite under the race
# detector (the trace sinks and metric registry are exercised concurrently),
# then the chaos fault matrix.
tier1: build
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) chaos

# chaos runs the fault-injection matrix under the race detector: jammer ×
# churn × channel-loss cells with invariant and determinism checking. See
# docs/robustness.md.
chaos:
	$(GO) test -race -run 'TestChaosMatrix|TestRunChaosMatrixPasses' ./internal/faults ./cmd/jrsnd-sim

race:
	$(GO) test -race ./...

# fuzz runs every native fuzz target (wire decoder, handshake transcript,
# DSSS sync window) for FUZZTIME each. Out of tier1: run it before releases
# or after touching the codec or receive paths.
fuzz:
	$(GO) test -run xxx -fuzz FuzzDecodeFrame -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run xxx -fuzz FuzzHandshakeTranscript -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run xxx -fuzz FuzzSyncWindow -fuzztime $(FUZZTIME) ./internal/dsss

# vuln scans the module against the Go vulnerability database. Out of
# tier1: needs network access and the govulncheck tool
# (golang.org/x/vuln/cmd/govulncheck).
vuln:
	govulncheck ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

report:
	$(GO) run ./cmd/jrsnd-report -runs 20 -o report.md
