GO ?= go
FUZZTIME ?= 30s

.PHONY: build test tier1 race bench report chaos fuzz vuln authd-smoke authd-bench authd-crash authd-replica lint lint-fixtures prof benchgate node-e2e

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# tier1 is the full quality gate: vet plus the whole suite under the race
# detector (the trace sinks and metric registry are exercised concurrently),
# then the chaos fault matrix.
tier1: build
	$(GO) vet ./...
	$(MAKE) lint
	$(MAKE) lint-fixtures
	$(GO) test -race ./...
	$(MAKE) chaos
	$(MAKE) authd-smoke
	$(MAKE) authd-crash
	$(MAKE) authd-replica
	$(MAKE) node-e2e
	$(MAKE) benchgate

# benchgate measures the hot-path benchmarks (sim scheduler, DSSS receive
# path, authd handlers) against the checked-in BENCH_*.json baselines and
# fails on a >2x regression. Re-baseline deliberately with
# `go run ./cmd/jrsnd-benchgate -update`. See docs/observability.md.
benchgate:
	$(GO) run ./cmd/jrsnd-benchgate

# lint machine-enforces the repo invariants (determinism, bounded decode,
# constant-time compares, goroutine lifecycle, lock ordering, hot-path
# allocation freedom) with the stdlib-only analyzer in internal/lint;
# JSON findings are folded into a one-line summary and the pipeline exits
# non-zero on any unsuppressed finding. Restrict the run with
# `make lint LINT_CHECKS=goroutinelifecycle,lockorder`. See
# docs/static-analysis.md.
lint:
	$(GO) run ./cmd/jrsnd-lint -json $(if $(LINT_CHECKS),-checks $(LINT_CHECKS)) ./... | $(GO) run ./cmd/jrsnd-lint -summarize

# lint-fixtures is the analyzer liveness gate: every seeded-violation
# fixture (leaked goroutine, AB/BA lock cycle, allocating hot path, plus
# the lexical goldens) must produce exactly its expected findings, and
# the gcflags=-m escape cross-check must agree with hotpathalloc. A
# broken analyzer that reports nothing fails here instead of letting
# `make lint` pass vacuously.
lint-fixtures:
	$(GO) test -count=1 -run 'TestGolden|TestSeeded|TestStale|TestSuiteScope|TestHotpathEscape' ./internal/lint ./cmd/jrsnd-lint

# chaos runs the fault-injection matrix under the race detector: jammer ×
# churn × channel-loss cells with invariant and determinism checking. See
# docs/robustness.md.
chaos:
	$(GO) test -race -run 'TestChaosMatrix|TestRunChaosMatrixPasses' ./internal/faults ./cmd/jrsnd-sim

race:
	$(GO) test -race ./...

# authd-smoke boots the authority service on an ephemeral port, provisions
# a batch, revokes a code past γ, asserts the /metrics counters, runs a
# small mixed loadgen pass, and shuts down gracefully. See docs/authority.md.
authd-smoke:
	$(GO) test -race -run 'TestAuthdSmoke|TestLoadgenLoopback' ./cmd/jrsnd-authority

# authd-crash runs the crash-fault injection harness: the in-process
# crash matrix (panic-based hooks at every WAL/snapshot crash point),
# then a subprocess kill-restart loop that boots the real binary armed to
# exit(137) at each point, hammers it with the loadgen, and verifies the
# recovery invariants against a ledger of acknowledged mutations. Exits 1
# on any violation. See docs/authority.md.
authd-crash:
	$(GO) run ./cmd/jrsnd-authority -crash-harness -crash-cycles 2

# authd-replica runs the replication-fault harness: a three-replica group
# (primary + two followers, min-sync 1) as real subprocesses, cycling
# follower kill/restart under load, an asymmetric partition that forces a
# snapshot catch-up, and a primary kill with gated promotion and client
# failover; after each fault the whole replica set must converge to one
# (sequence, fingerprint) and every replica is checked against the ledger
# of acknowledged mutations. Exits 1 on any violation. See
# docs/authority.md.
authd-replica:
	$(GO) run ./cmd/jrsnd-authority -replica-harness -replica-cycles 1

# node-e2e runs the real-socket end-to-end harness: a jrsnd-authority
# subprocess plus NODES jrsnd-node daemons on loopback UDP, full mutual
# authenticated discovery, SIGKILL + same-slot restart of one daemon with
# reap and re-discovery, zero invariant violations, clean shutdowns.
# Exits 1 on any violation. See docs/transport.md.
NODES ?= 8
node-e2e:
	mkdir -p bin
	$(GO) build -o bin/jrsnd-authority ./cmd/jrsnd-authority
	$(GO) build -o bin/jrsnd-node ./cmd/jrsnd-node
	bin/jrsnd-node -e2e -e2e-nodes $(NODES) -e2e-authority bin/jrsnd-authority

# authd-bench re-measures the service baseline archived in BENCH_authd.json:
# handler micro-benches plus a loadgen run over real loopback HTTP.
authd-bench:
	$(GO) test -run xxx -bench 'BenchmarkProvision|BenchmarkRevoke' -benchmem ./internal/authd
	$(GO) run ./cmd/jrsnd-authority -loadgen -n 2000 -m 16 -l 20 -requests 4000 -workers 8 -batch 2 -json BENCH_authd.json

# prof profiles a chaos-matrix run end to end: CPU and heap profiles land
# in prof/ next to one JSONL span trace per cell, ready for
# `go tool pprof prof/cpu.out` and `jrsnd-report -trace prof/traces`.
# See docs/observability.md.
prof:
	mkdir -p prof
	$(GO) run ./cmd/jrsnd-sim -chaos -trace-jsonl prof/traces -cpuprofile prof/cpu.out -memprofile prof/heap.out
	$(GO) run ./cmd/jrsnd-report -trace prof/traces -trace-only -folded prof/flame.folded -o prof/spans.md

# fuzz runs every native fuzz target (wire decoder, handshake transcript,
# DSSS sync window, authd request decoder, WAL replay/boot path, transport
# datagram dispatch) for FUZZTIME each. Out of tier1: run it before releases or after touching a
# codec, receive path, or the durability layer.
fuzz:
	$(GO) test -run xxx -fuzz FuzzDecodeFrame -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run xxx -fuzz FuzzHandshakeTranscript -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run xxx -fuzz FuzzSyncWindow -fuzztime $(FUZZTIME) ./internal/dsss
	$(GO) test -run xxx -fuzz FuzzDecodeRequest -fuzztime $(FUZZTIME) ./internal/authd
	$(GO) test -run xxx -fuzz FuzzReplayWAL -fuzztime $(FUZZTIME) ./internal/authd
	$(GO) test -run xxx -fuzz FuzzDatagram -fuzztime $(FUZZTIME) ./internal/transport

# vuln scans the module against the Go vulnerability database. Out of
# tier1: needs network access and the govulncheck tool
# (golang.org/x/vuln/cmd/govulncheck).
vuln:
	govulncheck ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

report:
	$(GO) run ./cmd/jrsnd-report -runs 20 -o report.md
