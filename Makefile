GO ?= go

.PHONY: build test tier1 race bench report

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# tier1 is the full quality gate: vet plus the whole suite under the race
# detector (the trace sinks and metric registry are exercised concurrently).
tier1: build
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

report:
	$(GO) run ./cmd/jrsnd-report -runs 20 -o report.md
