GO ?= go

.PHONY: build test tier1 race bench report chaos

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# tier1 is the full quality gate: vet plus the whole suite under the race
# detector (the trace sinks and metric registry are exercised concurrently),
# then the chaos fault matrix.
tier1: build
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) chaos

# chaos runs the fault-injection matrix under the race detector: jammer ×
# churn × channel-loss cells with invariant and determinism checking. See
# docs/robustness.md.
chaos:
	$(GO) test -race -run 'TestChaosMatrix|TestRunChaosMatrixPasses' ./internal/faults ./cmd/jrsnd-sim

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

report:
	$(GO) run ./cmd/jrsnd-report -runs 20 -o report.md
