package jrsnd_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	jrsnd "repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	params := jrsnd.DefaultParams()
	params.N = 30
	params.M = 10
	params.L = 8
	params.Q = 2
	params.FieldWidth, params.FieldHeight = 900, 900

	net, err := jrsnd.New(jrsnd.NetworkConfig{
		Params: params,
		Seed:   1,
		Jammer: jrsnd.JamReactive,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.CompromiseRandom(params.Q); err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if err := net.RunMNDP(1); err != nil {
		t.Fatal(err)
	}
	if len(net.Discoveries()) == 0 {
		t.Fatal("no discoveries in a dense 30-node cluster")
	}
	for _, d := range net.Discoveries() {
		if d.Via != jrsnd.ViaDNDP && d.Via != jrsnd.ViaMNDP {
			t.Fatalf("unknown discovery method %v", d.Via)
		}
	}
}

func TestFacadeTheoryConsistency(t *testing.T) {
	p := jrsnd.DefaultParams()
	lower, upper := jrsnd.DNDPBounds(p)
	if lower > upper {
		t.Fatal("bounds inverted")
	}
	if a := jrsnd.Alpha(p); a <= 0 || a >= 1 {
		t.Fatalf("α = %v out of (0,1) at the defaults", a)
	}
	sum := 0.0
	for x := 0; x <= p.M; x++ {
		sum += jrsnd.PrShared(p, x)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Pr[x] sums to %v", sum)
	}
	pHat, tBar := jrsnd.Combined(p)
	if pHat < lower || tBar < jrsnd.DNDPLatency(p) {
		t.Fatal("combined metrics inconsistent with components")
	}
	if jrsnd.MNDPLatency(p, 2, p.AvgDegree()) <= 0 {
		t.Fatal("non-positive M-NDP latency")
	}
	if jrsnd.MNDPLowerBound(0.5, 20) <= 0 {
		t.Fatal("non-positive M-NDP bound")
	}
}

func TestFacadeMeasureAndPrint(t *testing.T) {
	p := jrsnd.DefaultParams()
	p.N = 300
	p.L = 15
	p.Q = 5
	p.FieldWidth, p.FieldHeight = 2000, 2000
	m, err := jrsnd.MeasurePoint(jrsnd.PointConfig{
		Params: p,
		Jammer: jrsnd.CampaignJamReactive,
		Runs:   2,
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.PHat < m.PD {
		t.Fatal("JR-SND below D-NDP")
	}
	var sb strings.Builder
	if err := jrsnd.PrintFigure(&sb, jrsnd.Table1()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table I") {
		t.Fatal("Table1 print missing title")
	}
}

func TestFacadeEpochLoop(t *testing.T) {
	params := jrsnd.DefaultParams()
	params.N = 12
	params.M = 5
	params.L = 12
	params.Q = 0
	params.FieldWidth, params.FieldHeight = 600, 600

	net, err := jrsnd.New(jrsnd.NetworkConfig{Params: params, Seed: 4, Jammer: jrsnd.JamNone})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.RunEpochs(jrsnd.EpochConfig{Epochs: 2, Window: 1, MNDP: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("got %d epochs", len(stats))
	}
	if stats[0].PhysicalLinks > 0 && stats[0].Coverage() < 0.99 {
		t.Fatalf("coverage %v without jamming", stats[0].Coverage())
	}
}

func TestFacadeTraceAndRevocation(t *testing.T) {
	rec, err := jrsnd.NewTraceRecorder(1024)
	if err != nil {
		t.Fatal(err)
	}
	params := jrsnd.DefaultParams()
	params.N = 6
	params.M = 4
	params.L = 6
	params.Q = 0
	params.FieldWidth, params.FieldHeight = 500, 500
	net, err := jrsnd.New(jrsnd.NetworkConfig{Params: params, Seed: 5, Jammer: jrsnd.JamNone, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.RevokeGlobally(0); err != nil {
		t.Fatal(err)
	}
	if err := net.RunDNDP(1); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("trace recorded nothing")
	}
	if len(rec.Filter(0, -1, "authority revoked")) != 1 {
		t.Fatal("global revocation not traced")
	}
}

func TestFacadeBaselines(t *testing.T) {
	u := jrsnd.DefaultUFH()
	if u.ExpectedEstablishmentTime() <= jrsnd.DNDPLatency(jrsnd.DefaultParams()) {
		t.Fatal("UFH not slower than D-NDP at defaults")
	}
	var cc jrsnd.BaselineCommonCode
	if cc.DiscoveryProbability(1) != 0 {
		t.Fatal("common code survived compromise")
	}
	fig, err := jrsnd.BaselineDoS(jrsnd.DefaultParams())
	if err != nil || len(fig.Series) == 0 {
		t.Fatalf("BaselineDoS: %v", err)
	}
}

// ExampleNew demonstrates the minimal discovery workflow.
func ExampleNew() {
	params := jrsnd.DefaultParams()
	params.N = 10
	params.M = 6
	params.L = 10 // every node shares every code
	params.Q = 0
	params.FieldWidth, params.FieldHeight = 500, 500

	net, err := jrsnd.New(jrsnd.NetworkConfig{Params: params, Seed: 1, Jammer: jrsnd.JamNone})
	if err != nil {
		panic(err)
	}
	if err := net.RunDNDP(1); err != nil {
		panic(err)
	}
	fmt.Println("all physical pairs discovered:", len(net.Discoveries()) == net.PhysicalGraph().NumEdges())
	// Output: all physical pairs discovered: true
}
